package exec

import (
	"fmt"
	"math/big"
	"runtime"
	"sync"
	"sync/atomic"

	"mpq/internal/algebra"
	"mpq/internal/crypto"
)

// The batch crypto path. The per-value EncryptValue/DecryptValue calls
// resolve the ring's cipher, allocate an encoding, and build cipher state
// for every cell; the column-wise entry points below amortize all of it
// per batch — one cipher resolution, one encoding arena, one batched call
// into internal/crypto — and optionally split large columns across an
// intra-batch worker pool. The per-value path remains (Materializing
// oracle, ValueCrypto knob) and every batch result is bit-identical to it
// for the deterministic schemes, decrypt-identical for the randomized
// ones.

// cryptoParMinCells is the column size from which the symmetric batch
// entry points fan out to the worker pool; below it, goroutine hand-off
// costs more than it saves.
const cryptoParMinCells = 512

// cryptoParMinPaillier is the same threshold for Paillier cells, whose
// per-value cost is orders of magnitude higher.
const cryptoParMinPaillier = 16

// cryptoWorkers returns the effective intra-batch worker count:
// CryptoWorkers when positive (tests force concurrency with it), else
// GOMAXPROCS; negative disables the pool.
func (e *Executor) cryptoWorkers() int {
	switch {
	case e == nil || e.CryptoWorkers < 0:
		return 1
	case e.CryptoWorkers > 0:
		return e.CryptoWorkers
	default:
		return runtime.GOMAXPROCS(0)
	}
}

// runChunks splits [0, n) into up to `workers` contiguous chunks of at
// least minChunk items and runs fn on each concurrently. Chunks are
// disjoint, so fn may write shared slices index-wise without locks. The
// first error wins.
func runChunks(n, workers, minChunk int, fn func(lo, hi int) error) error {
	if workers > n/minChunk {
		workers = n / minChunk
	}
	if workers <= 1 {
		return fn(0, n)
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if err := fn(lo, hi); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}(lo, hi)
	}
	wg.Wait()
	return firstErr
}

// ---------------------------------------------------------------------------
// Batch encryption

// EncryptColumn encrypts a column of plaintext values under one scheme with
// one key ring, the batch counterpart of per-value EncryptValue calls.
// Deterministic and OPE outputs are bit-identical to EncryptValue;
// randomized and Paillier outputs decrypt to the same plaintexts.
func EncryptColumn(ring *crypto.KeyRing, scheme algebra.Scheme, vals []Value) ([]Value, error) {
	out := make([]Value, len(vals))
	if err := encryptColumnInto(ring, scheme, vals, out); err != nil {
		return nil, err
	}
	return out, nil
}

// encryptColumnPar is EncryptColumn with the executor's intra-batch worker
// pool applied to large columns.
func encryptColumnPar(e *Executor, ring *crypto.KeyRing, scheme algebra.Scheme, vals, dst []Value) error {
	minChunk := cryptoParMinCells
	if scheme == algebra.SchemePaillier {
		minChunk = cryptoParMinPaillier
		// Build the fixed-base table once, outside the pool, so chunks
		// never race to construct it back to back.
		if len(vals) >= minChunk && ring.PK != nil {
			if err := ring.PK.Precompute(); err != nil {
				return err
			}
		}
	}
	return runChunks(len(vals), e.cryptoWorkers(), minChunk, func(lo, hi int) error {
		return encryptColumnInto(ring, scheme, vals[lo:hi], dst[lo:hi])
	})
}

// dictEncMemo caches one plaintext dictionary's encryption, so every batch
// of a column (table scans serve windows over one shared dictionary) reuses
// the same ciphertext dictionary: each distinct value is encrypted once per
// column, not once per batch, and the cipher dict keeps one identity for the
// downstream per-edge wire ledgers and predicate memos.
type dictEncMemo struct {
	plainID    *string // identity of the plaintext dictionary (DictID)
	cipherDict [][]byte
}

// encryptDictColumn encrypts a dictionary-encoded string column by
// encrypting each distinct dictionary entry exactly once; the codes forward
// into the cipher-dict column zero-copy. Deterministic scheme only: equal
// plaintexts must map to equal ciphertexts for cells to share an entry
// (randomized encryption would link equal cells; OPE rejects strings).
// memo persists the encrypted dictionary across batches; a racing rebuild
// under morsel parallelism is idempotent (deterministic ciphertexts).
func encryptDictColumn(e *Executor, ring *crypto.KeyRing, scheme algebra.Scheme, col *Column, memo *atomic.Pointer[dictEncMemo]) (Column, error) {
	cipherDict := func(cd [][]byte) Column {
		dictStats.encCells.Add(uint64(len(col.Codes)))
		return Column{Kind: ColCipherDict, Scheme: scheme, KeyID: ring.ID,
			Codes: col.Codes, CipherDict: cd, Nulls: col.Nulls}
	}
	if m := memo.Load(); m != nil && m.plainID == DictID(col.Dict) {
		return cipherDict(m.cipherDict), nil
	}
	vals := make([]Value, len(col.Dict))
	for i, s := range col.Dict {
		vals[i] = String(s)
	}
	if err := encryptColumnPar(e, ring, scheme, vals, vals); err != nil {
		return Column{}, err
	}
	cd := make([][]byte, len(vals))
	for i := range vals {
		cd[i] = vals[i].C.Data
	}
	dictStats.encEntries.Add(uint64(len(cd)))
	memo.Store(&dictEncMemo{plainID: DictID(col.Dict), cipherDict: cd})
	return cipherDict(cd), nil
}

// encryptColumnInto encrypts vals into dst (dst may alias vals; every
// input is consumed before the first output is written).
func encryptColumnInto(ring *crypto.KeyRing, scheme algebra.Scheme, vals, dst []Value) error {
	if len(vals) == 0 {
		return nil
	}
	cs := make([]Cipher, len(vals))
	switch scheme {
	case algebra.SchemeDeterministic, algebra.SchemeRandom:
		// Pack the column's encodings into one arena (slot i at
		// bounds[i]:bounds[i+1]) and encrypt it in place-adjacent form: no
		// per-slot slice headers anywhere on the hot path.
		bounds := make([]int, len(vals)+1)
		for i, v := range vals {
			n, err := plainSize(v)
			if err != nil {
				return err
			}
			bounds[i+1] = bounds[i] + n
		}
		arena := make([]byte, bounds[len(vals)])
		for i, v := range vals {
			if err := writePlain(arena[bounds[i]:bounds[i+1]], v); err != nil {
				return err
			}
		}
		var (
			ct  []byte
			err error
		)
		if scheme == algebra.SchemeDeterministic {
			d, derr := ring.Det()
			if derr != nil {
				return derr
			}
			ct, err = d.EncryptArena(arena, bounds)
		} else {
			r, rerr := ring.Rnd()
			if rerr != nil {
				return rerr
			}
			ct, err = r.EncryptArena(arena, bounds)
		}
		if err != nil {
			return err
		}
		const ivSize = 16 // aes.BlockSize, the arena slot widening
		keyID := ring.ID
		for i, v := range vals {
			lo, hi := bounds[i]+i*ivSize, bounds[i+1]+(i+1)*ivSize
			// Field-wise stores: a composite-literal assignment copies the
			// whole struct through a temporary on every iteration.
			c := &cs[i]
			c.Scheme = scheme
			c.KeyID = keyID
			c.Data = ct[lo:hi:hi]
			c.Plain = v.Kind
			d := &dst[i]
			d.Kind = KCipher
			d.I, d.F, d.S = 0, 0, ""
			d.C = c
		}
	case algebra.SchemeOPE:
		o, err := ring.OPE()
		if err != nil {
			return err
		}
		encs := make([]uint64, len(vals))
		for i, v := range vals {
			if encs[i], err = opeEncode(v); err != nil {
				return err
			}
		}
		cts := o.EncryptBatch(encs)
		for i, v := range vals {
			cs[i] = Cipher{Scheme: scheme, KeyID: ring.ID, Data: cts[i], Plain: v.Kind}
			dst[i] = Enc(&cs[i])
		}
	case algebra.SchemePaillier:
		ms := make([]*big.Int, len(vals))
		for i, v := range vals {
			var err error
			if ms[i], err = pheEncode(v); err != nil {
				return err
			}
		}
		cts, err := ring.PK.EncryptBatch(ms)
		if err != nil {
			return err
		}
		for i, v := range vals {
			cs[i] = Cipher{Scheme: scheme, KeyID: ring.ID, Phe: cts[i], Div: 1, Plain: v.Kind}
			dst[i] = Enc(&cs[i])
		}
	default:
		return fmt.Errorf("exec: unknown scheme %q", scheme)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Batch decryption

// cell addresses one encrypted value inside a batch of rows.
type cell struct{ ri, ci int }

// cipherGroup collects the cells of one batch sharing a scheme and key, so
// they decrypt through one batched call.
type cipherGroup struct {
	scheme algebra.Scheme
	keyID  string
	cells  []cell
}

type groupKeyID struct {
	scheme algebra.Scheme
	keyID  string
}

// groupCipherCells partitions the cipher cells of the given columns (nil =
// every cipher cell of every row) by scheme and key id.
func groupCipherCells(rows [][]Value, cols []int) []*cipherGroup {
	groups := make(map[groupKeyID]*cipherGroup)
	var order []*cipherGroup
	add := func(ri, ci int, c *Cipher) {
		k := groupKeyID{c.Scheme, c.KeyID}
		g, ok := groups[k]
		if !ok {
			g = &cipherGroup{scheme: c.Scheme, keyID: c.KeyID}
			groups[k] = g
			order = append(order, g)
		}
		g.cells = append(g.cells, cell{ri, ci})
	}
	if cols == nil {
		for ri, row := range rows {
			for ci, v := range row {
				if v.IsCipher() {
					add(ri, ci, v.C)
				}
			}
		}
		return order
	}
	for _, ci := range cols {
		for ri, row := range rows {
			if ci < len(row) && row[ci].IsCipher() {
				add(ri, ci, row[ci].C)
			}
		}
	}
	return order
}

// decryptGroup decrypts one scheme/key group of cells in place, fanning
// large groups out to the worker pool.
func (e *Executor) decryptGroup(ring *crypto.KeyRing, g *cipherGroup, rows [][]Value) error {
	minChunk := cryptoParMinCells
	if g.scheme == algebra.SchemePaillier {
		minChunk = cryptoParMinPaillier
	}
	return runChunks(len(g.cells), e.cryptoWorkers(), minChunk, func(lo, hi int) error {
		return decryptCells(ring, g.scheme, g.cells[lo:hi], rows)
	})
}

// decryptCells batch-decrypts one chunk of same-scheme, same-key cells,
// writing plaintext values back into rows.
func decryptCells(ring *crypto.KeyRing, scheme algebra.Scheme, cells []cell, rows [][]Value) error {
	switch scheme {
	case algebra.SchemeDeterministic, algebra.SchemeRandom:
		cts := make([][]byte, len(cells))
		for i, c := range cells {
			cts[i] = rows[c.ri][c.ci].C.Data
		}
		var (
			pts [][]byte
			err error
		)
		if scheme == algebra.SchemeDeterministic {
			d, derr := ring.Det()
			if derr != nil {
				return derr
			}
			pts, err = d.DecryptBatch(cts)
		} else {
			r, rerr := ring.Rnd()
			if rerr != nil {
				return rerr
			}
			pts, err = r.DecryptBatch(cts)
		}
		if err != nil {
			return err
		}
		for i, c := range cells {
			v, err := decodePlain(pts[i])
			if err != nil {
				return err
			}
			rows[c.ri][c.ci] = v
		}
	case algebra.SchemeOPE:
		o, err := ring.OPE()
		if err != nil {
			return err
		}
		cts := make([][]byte, len(cells))
		for i, c := range cells {
			cts[i] = rows[c.ri][c.ci].C.Data
		}
		encs, err := o.DecryptBatch(cts)
		if err != nil {
			return err
		}
		for i, c := range cells {
			v, err := opeDecode(encs[i], rows[c.ri][c.ci].C.Plain)
			if err != nil {
				return err
			}
			rows[c.ri][c.ci] = v
		}
	case algebra.SchemePaillier:
		if !ring.PK.HasPrivate() {
			return fmt.Errorf("exec: key %s lacks the Paillier private part", ring.ID)
		}
		for _, c := range cells {
			ct := rows[c.ri][c.ci].C
			m, err := ring.PK.Decrypt(ct.Phe)
			if err != nil {
				return err
			}
			v, err := pheDecode(m, ct.Div, ct.Plain)
			if err != nil {
				return err
			}
			rows[c.ri][c.ci] = v
		}
	default:
		return fmt.Errorf("exec: unknown scheme %q", scheme)
	}
	return nil
}

// decryptColumn decrypts one cipher column into its replacement plaintext
// column. A ciphertext-byte column decrypts straight off its payload vector
// — the scheme and key are column metadata, so there is nothing to group —
// while a generic column's cells are grouped by scheme and key first.
// Large columns fan out to the intra-batch worker pool. The caller has
// already verified every cell is a ciphertext.
func (e *Executor) decryptColumn(col *Column, resolve func(string) (*crypto.KeyRing, error)) (Column, error) {
	if col.Kind == ColCipherDict {
		// Decrypt the dictionary once and fan the codes back out: the
		// plaintext column stays dict-encoded, sharing the codes vector.
		ring, err := resolve(col.KeyID)
		if err != nil {
			return Column{}, err
		}
		ents := make([]Value, len(col.CipherDict))
		plains := make([]Kind, len(col.CipherDict))
		for i := range plains {
			plains[i] = KString
		}
		if err := decryptBytesInto(ring, col.Scheme, col.CipherDict, plains, ents); err != nil {
			return Column{}, err
		}
		dict := make([]string, len(ents))
		for i := range ents {
			if ents[i].Kind != KString {
				return Column{}, fmt.Errorf("exec: cipher-dict entry is not a string")
			}
			dict[i] = ents[i].S
		}
		dictStats.decEntries.Add(uint64(len(dict)))
		dictStats.decCells.Add(uint64(len(col.Codes)))
		return Column{Kind: ColDict, Codes: col.Codes, Dict: dict, Nulls: col.Nulls}, nil
	}
	n := col.Len()
	vals := make([]Value, n)
	if col.Kind == ColCipherBytes {
		ring, err := resolve(col.KeyID)
		if err != nil {
			return Column{}, err
		}
		scheme := col.Scheme
		err = runChunks(n, e.cryptoWorkers(), cryptoParMinCells, func(lo, hi int) error {
			return decryptBytesInto(ring, scheme, col.Bytes[lo:hi], col.Plains[lo:hi], vals[lo:hi])
		})
		if err != nil {
			return Column{}, err
		}
		return NewColumn(vals), nil
	}
	copy(vals, col.Vals)
	// Group cell positions by scheme and key, then decrypt each group
	// batch-wise in place.
	type posGroup struct {
		scheme algebra.Scheme
		keyID  string
		pos    []int32
	}
	groups := make(map[groupKeyID]*posGroup)
	var order []*posGroup
	for i := range vals {
		c := vals[i].C
		k := groupKeyID{c.Scheme, c.KeyID}
		g, ok := groups[k]
		if !ok {
			g = &posGroup{scheme: c.Scheme, keyID: c.KeyID}
			groups[k] = g
			order = append(order, g)
		}
		g.pos = append(g.pos, int32(i))
	}
	for _, g := range order {
		ring, err := resolve(g.keyID)
		if err != nil {
			return Column{}, err
		}
		minChunk := cryptoParMinCells
		if g.scheme == algebra.SchemePaillier {
			minChunk = cryptoParMinPaillier
		}
		err = runChunks(len(g.pos), e.cryptoWorkers(), minChunk, func(lo, hi int) error {
			return decryptPosCells(ring, g.scheme, g.pos[lo:hi], vals)
		})
		if err != nil {
			return Column{}, err
		}
	}
	return NewColumn(vals), nil
}

// decryptBytesInto batch-decrypts one chunk of a ciphertext-byte column's
// payloads into dst.
func decryptBytesInto(ring *crypto.KeyRing, scheme algebra.Scheme, cts [][]byte, plains []Kind, dst []Value) error {
	switch scheme {
	case algebra.SchemeDeterministic, algebra.SchemeRandom:
		var (
			pts [][]byte
			err error
		)
		if scheme == algebra.SchemeDeterministic {
			d, derr := ring.Det()
			if derr != nil {
				return derr
			}
			pts, err = d.DecryptBatch(cts)
		} else {
			r, rerr := ring.Rnd()
			if rerr != nil {
				return rerr
			}
			pts, err = r.DecryptBatch(cts)
		}
		if err != nil {
			return err
		}
		for i := range pts {
			v, err := decodePlain(pts[i])
			if err != nil {
				return err
			}
			dst[i] = v
		}
		return nil
	case algebra.SchemeOPE:
		o, err := ring.OPE()
		if err != nil {
			return err
		}
		encs, err := o.DecryptBatch(cts)
		if err != nil {
			return err
		}
		for i := range encs {
			v, err := opeDecode(encs[i], plains[i])
			if err != nil {
				return err
			}
			dst[i] = v
		}
		return nil
	}
	return fmt.Errorf("exec: unknown scheme %q", scheme)
}

// decryptPosCells batch-decrypts one chunk of same-scheme, same-key cells
// of a generic column in place (pos indexes vals).
func decryptPosCells(ring *crypto.KeyRing, scheme algebra.Scheme, pos []int32, vals []Value) error {
	switch scheme {
	case algebra.SchemeDeterministic, algebra.SchemeRandom, algebra.SchemeOPE:
		cts := make([][]byte, len(pos))
		for i, p := range pos {
			cts[i] = vals[p].C.Data
		}
		var plains []Kind
		if scheme == algebra.SchemeOPE {
			plains = make([]Kind, len(pos))
			for i, p := range pos {
				plains[i] = vals[p].C.Plain
			}
		}
		out := make([]Value, len(pos))
		if err := decryptBytesInto(ring, scheme, cts, plains, out); err != nil {
			return err
		}
		for i, p := range pos {
			vals[p] = out[i]
		}
		return nil
	case algebra.SchemePaillier:
		if !ring.PK.HasPrivate() {
			return fmt.Errorf("exec: key %s lacks the Paillier private part", ring.ID)
		}
		for _, p := range pos {
			ct := vals[p].C
			m, err := ring.PK.Decrypt(ct.Phe)
			if err != nil {
				return err
			}
			v, err := pheDecode(m, ct.Div, ct.Plain)
			if err != nil {
				return err
			}
			vals[p] = v
		}
		return nil
	}
	return fmt.Errorf("exec: unknown scheme %q", scheme)
}

// decryptGroups resolves each group's ring through resolve and decrypts all
// groups in place.
func (e *Executor) decryptGroups(groups []*cipherGroup, rows [][]Value, resolve func(string) (*crypto.KeyRing, error)) error {
	for _, g := range groups {
		ring, err := resolve(g.keyID)
		if err != nil {
			return err
		}
		if err := e.decryptGroup(ring, g, rows); err != nil {
			return err
		}
	}
	return nil
}

// DecryptRows returns a copy of the rows with every ciphertext decrypted
// using the executor's keys, leaving the input untouched (it may alias
// upstream storage). It is the batch counterpart of per-value DecryptValue
// over a row window: ciphers are grouped by scheme and key and decrypted
// column-batch-wise, with large batches fanned out to the worker pool.
func (e *Executor) DecryptRows(rows [][]Value) ([][]Value, error) {
	out := make([][]Value, len(rows))
	for ri, row := range rows {
		out[ri] = append(make([]Value, 0, len(row)), row...)
	}
	if e.ValueCrypto {
		for _, row := range out {
			for ci, v := range row {
				if v.IsCipher() {
					pv, err := e.DecryptValue(v.C)
					if err != nil {
						return nil, err
					}
					row[ci] = pv
				}
			}
		}
		return out, nil
	}
	if err := e.decryptGroups(groupCipherCells(out, nil), out, e.Keys.Get); err != nil {
		return nil, err
	}
	return out, nil
}
