package exec_test

import (
	"testing"

	"mpq/internal/exec"
	"mpq/internal/planner"
	"mpq/internal/tpch"
)

// TestPipelineMatchesMaterializingTPCH runs the full 22-query TPC-H
// workload through the batch pipeline and the legacy materializing
// evaluator on the same centralized plaintext tables and diffs the results
// row for row: the streaming interior must be observationally identical,
// including row order (every operator preserves its input order) and
// floating-point accumulation order.
func TestPipelineMatchesMaterializingTPCH(t *testing.T) {
	const sf = 0.001
	cat := tpch.Catalog(sf)
	tables := tpch.Generate(sf, 99)
	pl := planner.New(cat)

	batch := exec.NewExecutor()
	oracle := exec.NewExecutor()
	oracle.Materializing = true
	for name, tbl := range tables {
		batch.Tables[name] = tbl
		oracle.Tables[name] = tbl
	}

	for _, q := range tpch.Queries() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			plan, err := pl.PlanSQL(q.SQL)
			if err != nil {
				t.Fatal(err)
			}
			got, gotHdr, err := batch.RunPlan(plan)
			if err != nil {
				t.Fatalf("batch pipeline: %v", err)
			}
			want, wantHdr, err := oracle.RunPlan(plan)
			if err != nil {
				t.Fatalf("materializing oracle: %v", err)
			}
			if len(gotHdr) != len(wantHdr) {
				t.Fatalf("headers differ: %v vs %v", gotHdr, wantHdr)
			}
			diffTables(t, got, want)
		})
	}
}

// TestPipelineBatchSizeInvariance proves results do not depend on the batch
// granularity: a batch size of 1 (degenerate row-at-a-time streaming, where
// every columnar vector holds a single cell), a small odd size, and a batch
// size larger than every relation produce identical rows for the full
// 22-query TPC-H workload, all diffed against the row-at-a-time
// materializing oracle.
func TestPipelineBatchSizeInvariance(t *testing.T) {
	const sf = 0.001
	cat := tpch.Catalog(sf)
	tables := tpch.Generate(sf, 99)
	pl := planner.New(cat)

	oracle := exec.NewExecutor()
	oracle.Materializing = true
	for name, tbl := range tables {
		oracle.Tables[name] = tbl
	}
	type planned struct {
		num  int
		plan *planner.Plan
		want *exec.Table
	}
	var qs []planned
	for _, q := range tpch.Queries() {
		plan, err := pl.PlanSQL(q.SQL)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := oracle.RunPlan(plan)
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, planned{num: q.Num, plan: plan, want: want})
	}

	for _, size := range []int{1, 7, 1 << 20} {
		e := exec.NewExecutor()
		e.BatchSize = size
		for name, tbl := range tables {
			e.Tables[name] = tbl
		}
		for _, q := range qs {
			got, _, err := e.RunPlan(q.plan)
			if err != nil {
				t.Fatalf("batch=%d Q%d: %v", size, q.num, err)
			}
			diffTables(t, got, q.want)
		}
	}
}

// diffTables fails the test unless the two tables hold identical rows in
// identical order.
func diffTables(t *testing.T, got, want *exec.Table) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("row count %d, want %d", got.Len(), want.Len())
	}
	for i := range want.Rows {
		g, w := exec.DisplayString(got.Rows[i]), exec.DisplayString(want.Rows[i])
		if g != w {
			t.Fatalf("row %d differs:\ngot:  %s\nwant: %s", i, g, w)
		}
	}
}
