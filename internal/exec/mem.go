package exec

import (
	"sync/atomic"
)

// MemAccountant tracks the memory reservations of one query run against a
// fixed budget. Pipeline breakers (group-by tables, hash-join build sides)
// reserve before growing live state and release when they emit or spill;
// a failed reservation is the signal to switch to out-of-core execution,
// not an error. One accountant is shared by every fragment executor of a
// run, so the budget caps the query as a whole rather than per operator.
type MemAccountant struct {
	budget int64
	used   atomic.Int64
}

// NewMemAccountant returns an accountant enforcing budget bytes. A zero or
// negative budget means unlimited: Reserve always succeeds.
func NewMemAccountant(budget int64) *MemAccountant {
	return &MemAccountant{budget: budget}
}

// Reserve attempts to reserve n bytes, reporting whether the reservation
// fit under the budget. A nil accountant or an unlimited budget always
// grants. The caller owns a granted reservation until it calls Release.
func (m *MemAccountant) Reserve(n int64) bool {
	if m == nil || m.budget <= 0 {
		return true
	}
	for {
		cur := m.used.Load()
		next := cur + n
		if next > m.budget {
			return false
		}
		if m.used.CompareAndSwap(cur, next) {
			return true
		}
	}
}

// Release returns n previously reserved bytes to the budget.
func (m *MemAccountant) Release(n int64) {
	if m == nil || m.budget <= 0 {
		return
	}
	m.used.Add(-n)
}

// Used returns the bytes currently reserved.
func (m *MemAccountant) Used() int64 {
	if m == nil {
		return 0
	}
	return m.used.Load()
}

// Budget returns the configured budget (0 = unlimited).
func (m *MemAccountant) Budget() int64 {
	if m == nil {
		return 0
	}
	return m.budget
}
