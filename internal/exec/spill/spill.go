// Package spill implements the on-disk batch run format out-of-core
// execution partitions live state into: a compact column-vector encoding of
// exec.Batch reusing every Column layout (including dictionary and
// ciphertext columns), written through buffered CRC-framed appends and read
// back batch by batch. A run is a temporary file; the exec package decides
// *when* to spill (memory accountant), this package only decides *how* bytes
// hit disk.
//
// File layout:
//
//	magic "MPQSPILL" | version byte | frame*
//	frame = u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// Each payload is one batch: column count, row count, then each column as a
// kind byte, an optional null bitmap, and the layout-specific vectors.
// Dictionaries are written once per run on first appearance and referenced
// by a run-local id afterwards; the reader reconstructs one shared slice per
// id, so dictionary identity (and the per-dictionary caches keyed on it)
// survives the round trip within a run.
package spill

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/big"
	"os"
	"time"

	"mpq/internal/algebra"
	"mpq/internal/exec"
)

var magic = []byte("MPQSPILL")

const (
	formatVersion = 1
	// maxFrameBytes bounds a frame a reader will accept: a corrupted length
	// word must not drive a multi-gigabyte allocation.
	maxFrameBytes = 1 << 30
)

// Factory creates spill runs as temporary files under Dir (the system temp
// directory when empty). It implements exec.SpillFactory.
type Factory struct {
	Dir string
}

// NewFactory returns a factory writing runs under dir.
func NewFactory(dir string) *Factory { return &Factory{Dir: dir} }

// NewRun creates an empty run file.
func (f *Factory) NewRun() (exec.SpillRun, error) {
	file, err := os.CreateTemp(f.Dir, "mpqspill-*.run")
	if err != nil {
		return nil, fmt.Errorf("spill: create run: %w", err)
	}
	w := bufio.NewWriterSize(file, 1<<16)
	if _, err := w.Write(magic); err != nil {
		file.Close()
		os.Remove(file.Name())
		return nil, err
	}
	if err := w.WriteByte(formatVersion); err != nil {
		file.Close()
		os.Remove(file.Name())
		return nil, err
	}
	return &run{file: file, w: w, dictIDs: map[*string]uint32{}, cdictIDs: map[*[]byte]uint32{}}, nil
}

// run is one append-then-replay spill partition.
type run struct {
	file     *os.File
	w        *bufio.Writer
	buf      []byte // payload scratch, reused across Append calls
	dictIDs  map[*string]uint32
	cdictIDs map[*[]byte]uint32
	nextDict uint32
	finished bool
	released bool
}

// Append serializes b at the end of the run.
func (r *run) Append(b *exec.Batch) error {
	if r.finished || r.released {
		return errors.New("spill: append to finished run")
	}
	start := time.Now()
	payload, err := r.encodeBatch(r.buf[:0], b)
	if err != nil {
		return err
	}
	r.buf = payload[:0]
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := r.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := r.w.Write(payload); err != nil {
		return err
	}
	exec.AddSpillWrite(len(hdr)+len(payload), time.Since(start).Seconds())
	return nil
}

// Finish flushes buffered frames and seals the run for reading.
func (r *run) Finish() error {
	if r.released {
		return errors.New("spill: finish on released run")
	}
	if r.finished {
		return nil
	}
	if err := r.w.Flush(); err != nil {
		return err
	}
	r.finished = true
	return nil
}

// Open returns a reader replaying the run from the beginning.
func (r *run) Open() (exec.SpillReader, error) {
	if !r.finished {
		return nil, errors.New("spill: open of unfinished run")
	}
	if r.released {
		return nil, errors.New("spill: open of released run")
	}
	if _, err := r.file.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(r.file, 1<<16)
	hdr := make([]byte, len(magic)+1)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("spill: short header: %w", err)
	}
	if string(hdr[:len(magic)]) != string(magic) {
		return nil, errors.New("spill: bad magic")
	}
	if hdr[len(magic)] != formatVersion {
		return nil, fmt.Errorf("spill: unsupported version %d", hdr[len(magic)])
	}
	return &reader{r: br, dicts: map[uint32][]string{}, cdicts: map[uint32][][]byte{}}, nil
}

// Release deletes the run's backing file. Safe on unfinished runs (error
// paths) and idempotent.
func (r *run) Release() error {
	if r.released {
		return nil
	}
	r.released = true
	name := r.file.Name()
	err := r.file.Close()
	if rmErr := os.Remove(name); err == nil {
		err = rmErr
	}
	return err
}

// ---------------------------------------------------------------------------
// Encoding

func appendUvarint(buf []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(buf, tmp[:n]...)
}

func appendU32(buf []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(buf, tmp[:]...)
}

func appendU64(buf []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(buf, tmp[:]...)
}

func appendBytes(buf []byte, b []byte) []byte {
	buf = appendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func appendString(buf []byte, s string) []byte {
	buf = appendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func (r *run) encodeBatch(buf []byte, b *exec.Batch) ([]byte, error) {
	buf = appendUvarint(buf, uint64(len(b.Cols)))
	buf = appendUvarint(buf, uint64(b.N))
	for ci := range b.Cols {
		var err error
		buf, err = r.encodeColumn(buf, &b.Cols[ci], b.N)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func (r *run) encodeColumn(buf []byte, c *exec.Column, n int) ([]byte, error) {
	buf = append(buf, byte(c.Kind))
	if c.Kind != exec.ColAny {
		if c.Nulls != nil {
			buf = append(buf, 1)
			words := (n + 63) / 64
			for i := 0; i < words; i++ {
				var w uint64
				if i < len(c.Nulls) {
					w = c.Nulls[i]
				}
				buf = appendU64(buf, w)
			}
		} else {
			buf = append(buf, 0)
		}
	}
	switch c.Kind {
	case exec.ColInt:
		for i := 0; i < n; i++ {
			buf = appendU64(buf, uint64(c.Ints[i]))
		}
	case exec.ColFloat:
		for i := 0; i < n; i++ {
			buf = appendU64(buf, math.Float64bits(c.Floats[i]))
		}
	case exec.ColStr:
		for i := 0; i < n; i++ {
			if c.IsNull(i) {
				buf = appendUvarint(buf, 0)
				continue
			}
			buf = appendString(buf, c.Strs[i])
		}
	case exec.ColCipherBytes:
		buf = appendString(buf, string(c.Scheme))
		buf = appendString(buf, c.KeyID)
		for i := 0; i < n; i++ {
			buf = append(buf, byte(c.Plains[i]))
			buf = appendBytes(buf, c.Bytes[i])
		}
	case exec.ColDict:
		buf = r.encodeDictRef(buf, exec.DictID(c.Dict), func(buf []byte) []byte {
			buf = appendUvarint(buf, uint64(len(c.Dict)))
			for _, s := range c.Dict {
				buf = appendString(buf, s)
			}
			return buf
		})
		for i := 0; i < n; i++ {
			buf = appendU32(buf, c.Codes[i])
		}
	case exec.ColCipherDict:
		buf = r.encodeCipherDictRef(buf, c)
		buf = appendString(buf, string(c.Scheme))
		buf = appendString(buf, c.KeyID)
		for i := 0; i < n; i++ {
			buf = appendU32(buf, c.Codes[i])
		}
	case exec.ColAny:
		for i := 0; i < n; i++ {
			var err error
			buf, err = encodeValue(buf, c.Vals[i])
			if err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("spill: unknown column kind %d", c.Kind)
	}
	return buf, nil
}

// encodeDictRef writes a run-local dictionary reference: the id, a flag for
// whether the definition follows, and (first time only) the entries via def.
func (r *run) encodeDictRef(buf []byte, id *string, def func([]byte) []byte) []byte {
	if id == nil {
		// Empty dictionary: inline definition every time (no identity to key
		// on, and nothing to share).
		buf = appendUvarint(buf, uint64(math.MaxUint32))
		buf = append(buf, 1)
		return def(buf)
	}
	if got, ok := r.dictIDs[id]; ok {
		buf = appendUvarint(buf, uint64(got))
		buf = append(buf, 0)
		return buf
	}
	got := r.nextDict
	r.nextDict++
	r.dictIDs[id] = got
	buf = appendUvarint(buf, uint64(got))
	buf = append(buf, 1)
	return def(buf)
}

func (r *run) encodeCipherDictRef(buf []byte, c *exec.Column) []byte {
	id := exec.CipherDictID(c.CipherDict)
	if id == nil {
		buf = appendUvarint(buf, uint64(math.MaxUint32))
		buf = append(buf, 1)
		return encodeCipherDictDef(buf, c.CipherDict)
	}
	if got, ok := r.cdictIDs[id]; ok {
		buf = appendUvarint(buf, uint64(got))
		buf = append(buf, 0)
		return buf
	}
	got := r.nextDict
	r.nextDict++
	r.cdictIDs[id] = got
	buf = appendUvarint(buf, uint64(got))
	buf = append(buf, 1)
	return encodeCipherDictDef(buf, c.CipherDict)
}

func encodeCipherDictDef(buf []byte, dict [][]byte) []byte {
	buf = appendUvarint(buf, uint64(len(dict)))
	for _, e := range dict {
		buf = appendBytes(buf, e)
	}
	return buf
}

// Value cipher representation tags.
const (
	cipherRepData = 0 // symmetric/OPE ciphertext bytes
	cipherRepPhe  = 1 // Paillier group element (big-endian magnitude)
)

func encodeValue(buf []byte, v exec.Value) ([]byte, error) {
	buf = append(buf, byte(v.Kind))
	switch v.Kind {
	case exec.KNull:
	case exec.KInt:
		buf = appendU64(buf, uint64(v.I))
	case exec.KFloat:
		buf = appendU64(buf, math.Float64bits(v.F))
	case exec.KString:
		buf = appendString(buf, v.S)
	case exec.KCipher:
		if v.C == nil {
			return nil, errors.New("spill: cipher value with nil payload")
		}
		buf = appendString(buf, string(v.C.Scheme))
		buf = appendString(buf, v.C.KeyID)
		buf = append(buf, byte(v.C.Plain))
		buf = appendUvarint(buf, uint64(v.C.Div))
		if v.C.Phe != nil {
			buf = append(buf, cipherRepPhe)
			buf = appendBytes(buf, v.C.Phe.Bytes())
		} else {
			buf = append(buf, cipherRepData)
			buf = appendBytes(buf, v.C.Data)
		}
	default:
		return nil, fmt.Errorf("spill: unknown value kind %d", v.Kind)
	}
	return buf, nil
}

// ---------------------------------------------------------------------------
// Decoding

// reader replays a run. Dictionaries are reconstructed once per run-local id
// and shared across the batches that reference them.
type reader struct {
	r      *bufio.Reader
	frame  []byte
	dicts  map[uint32][]string
	cdicts map[uint32][][]byte
}

// Next returns the next batch, or (nil, nil) at end of run.
func (rd *reader) Next() (*exec.Batch, error) {
	start := time.Now()
	var hdr [8]byte
	if _, err := io.ReadFull(rd.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, nil
		}
		return nil, fmt.Errorf("spill: truncated frame header: %w", err)
	}
	size := binary.LittleEndian.Uint32(hdr[0:])
	want := binary.LittleEndian.Uint32(hdr[4:])
	if size > maxFrameBytes {
		return nil, fmt.Errorf("spill: frame length %d exceeds limit (corrupt run?)", size)
	}
	if cap(rd.frame) < int(size) {
		rd.frame = make([]byte, size)
	}
	payload := rd.frame[:size]
	if _, err := io.ReadFull(rd.r, payload); err != nil {
		return nil, fmt.Errorf("spill: truncated frame payload: %w", err)
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("spill: frame checksum mismatch (got %08x want %08x)", got, want)
	}
	b, err := rd.decodeBatch(payload)
	if err != nil {
		return nil, err
	}
	exec.AddSpillRead(len(hdr)+len(payload), time.Since(start).Seconds())
	return b, nil
}

// Close releases reader resources (the run file stays until Release).
func (rd *reader) Close() error { return nil }

// dec is a bounds-checked cursor over one frame payload.
type dec struct {
	b   []byte
	pos int
}

var errShort = errors.New("spill: frame payload shorter than encoded lengths (corrupt run?)")

func (d *dec) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		return 0, errShort
	}
	d.pos += n
	return v, nil
}

func (d *dec) length(limit int) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(limit) {
		return 0, errShort
	}
	return int(v), nil
}

func (d *dec) byte() (byte, error) {
	if d.pos >= len(d.b) {
		return 0, errShort
	}
	v := d.b[d.pos]
	d.pos++
	return v, nil
}

func (d *dec) take(n int) ([]byte, error) {
	if n < 0 || d.pos+n > len(d.b) {
		return nil, errShort
	}
	v := d.b[d.pos : d.pos+n]
	d.pos += n
	return v, nil
}

func (d *dec) u32() (uint32, error) {
	v, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(v), nil
}

func (d *dec) u64() (uint64, error) {
	v, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(v), nil
}

func (d *dec) bytes() ([]byte, error) {
	n, err := d.length(len(d.b))
	if err != nil {
		return nil, err
	}
	return d.take(n)
}

func (d *dec) str() (string, error) {
	b, err := d.bytes()
	return string(b), err
}

func (rd *reader) decodeBatch(payload []byte) (*exec.Batch, error) {
	d := &dec{b: payload}
	ncols, err := d.length(1 << 20)
	if err != nil {
		return nil, err
	}
	n64, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n64 > maxFrameBytes {
		return nil, errShort
	}
	n := int(n64)
	b := &exec.Batch{Cols: make([]exec.Column, ncols), N: n}
	for ci := 0; ci < ncols; ci++ {
		if err := rd.decodeColumn(d, &b.Cols[ci], n); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func (rd *reader) decodeColumn(d *dec, c *exec.Column, n int) error {
	kindByte, err := d.byte()
	if err != nil {
		return err
	}
	c.Kind = exec.ColKind(kindByte)
	if c.Kind != exec.ColAny {
		flag, err := d.byte()
		if err != nil {
			return err
		}
		if flag == 1 {
			words := (n + 63) / 64
			c.Nulls = make([]uint64, words)
			for i := 0; i < words; i++ {
				if c.Nulls[i], err = d.u64(); err != nil {
					return err
				}
			}
		}
	}
	switch c.Kind {
	case exec.ColInt:
		c.Ints = make([]int64, n)
		for i := 0; i < n; i++ {
			v, err := d.u64()
			if err != nil {
				return err
			}
			c.Ints[i] = int64(v)
		}
	case exec.ColFloat:
		c.Floats = make([]float64, n)
		for i := 0; i < n; i++ {
			v, err := d.u64()
			if err != nil {
				return err
			}
			c.Floats[i] = math.Float64frombits(v)
		}
	case exec.ColStr:
		c.Strs = make([]string, n)
		for i := 0; i < n; i++ {
			if c.Strs[i], err = d.str(); err != nil {
				return err
			}
		}
	case exec.ColCipherBytes:
		scheme, err := d.str()
		if err != nil {
			return err
		}
		c.Scheme = algebra.Scheme(scheme)
		if c.KeyID, err = d.str(); err != nil {
			return err
		}
		c.Bytes = make([][]byte, n)
		c.Plains = make([]exec.Kind, n)
		for i := 0; i < n; i++ {
			p, err := d.byte()
			if err != nil {
				return err
			}
			c.Plains[i] = exec.Kind(p)
			raw, err := d.bytes()
			if err != nil {
				return err
			}
			c.Bytes[i] = append([]byte(nil), raw...)
		}
	case exec.ColDict:
		if c.Dict, err = rd.decodeDictRef(d); err != nil {
			return err
		}
		if err := decodeCodes(d, c, n); err != nil {
			return err
		}
	case exec.ColCipherDict:
		if c.CipherDict, err = rd.decodeCipherDictRef(d); err != nil {
			return err
		}
		scheme, err := d.str()
		if err != nil {
			return err
		}
		c.Scheme = algebra.Scheme(scheme)
		if c.KeyID, err = d.str(); err != nil {
			return err
		}
		if err := decodeCodes(d, c, n); err != nil {
			return err
		}
	case exec.ColAny:
		c.Vals = make([]exec.Value, n)
		for i := 0; i < n; i++ {
			if c.Vals[i], err = decodeValue(d); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("spill: unknown column kind %d", c.Kind)
	}
	return nil
}

func decodeCodes(d *dec, c *exec.Column, n int) error {
	c.Codes = make([]uint32, n)
	for i := 0; i < n; i++ {
		v, err := d.u32()
		if err != nil {
			return err
		}
		c.Codes[i] = v
	}
	return nil
}

func (rd *reader) decodeDictRef(d *dec) ([]string, error) {
	id64, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	def, err := d.byte()
	if err != nil {
		return nil, err
	}
	id := uint32(id64)
	if def == 0 {
		dict, ok := rd.dicts[id]
		if !ok {
			return nil, fmt.Errorf("spill: reference to undefined dictionary %d", id)
		}
		return dict, nil
	}
	nentries, err := d.length(len(d.b))
	if err != nil {
		return nil, err
	}
	dict := make([]string, nentries)
	for i := range dict {
		if dict[i], err = d.str(); err != nil {
			return nil, err
		}
	}
	if id != math.MaxUint32 {
		rd.dicts[id] = dict
	}
	return dict, nil
}

func (rd *reader) decodeCipherDictRef(d *dec) ([][]byte, error) {
	id64, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	def, err := d.byte()
	if err != nil {
		return nil, err
	}
	id := uint32(id64)
	if def == 0 {
		dict, ok := rd.cdicts[id]
		if !ok {
			return nil, fmt.Errorf("spill: reference to undefined cipher dictionary %d", id)
		}
		return dict, nil
	}
	nentries, err := d.length(len(d.b))
	if err != nil {
		return nil, err
	}
	dict := make([][]byte, nentries)
	for i := range dict {
		raw, err := d.bytes()
		if err != nil {
			return nil, err
		}
		dict[i] = append([]byte(nil), raw...)
	}
	if id != math.MaxUint32 {
		rd.cdicts[id] = dict
	}
	return dict, nil
}

func decodeValue(d *dec) (exec.Value, error) {
	kindByte, err := d.byte()
	if err != nil {
		return exec.Value{}, err
	}
	switch exec.Kind(kindByte) {
	case exec.KNull:
		return exec.Null(), nil
	case exec.KInt:
		v, err := d.u64()
		if err != nil {
			return exec.Value{}, err
		}
		return exec.Int(int64(v)), nil
	case exec.KFloat:
		v, err := d.u64()
		if err != nil {
			return exec.Value{}, err
		}
		return exec.Float(math.Float64frombits(v)), nil
	case exec.KString:
		s, err := d.str()
		if err != nil {
			return exec.Value{}, err
		}
		return exec.String(s), nil
	case exec.KCipher:
		c := &exec.Cipher{}
		scheme, err := d.str()
		if err != nil {
			return exec.Value{}, err
		}
		c.Scheme = algebra.Scheme(scheme)
		if c.KeyID, err = d.str(); err != nil {
			return exec.Value{}, err
		}
		p, err := d.byte()
		if err != nil {
			return exec.Value{}, err
		}
		c.Plain = exec.Kind(p)
		div, err := d.uvarint()
		if err != nil {
			return exec.Value{}, err
		}
		c.Div = int64(div)
		rep, err := d.byte()
		if err != nil {
			return exec.Value{}, err
		}
		raw, err := d.bytes()
		if err != nil {
			return exec.Value{}, err
		}
		switch rep {
		case cipherRepPhe:
			c.Phe = new(big.Int).SetBytes(raw)
		case cipherRepData:
			c.Data = append([]byte(nil), raw...)
		default:
			return exec.Value{}, fmt.Errorf("spill: unknown cipher representation %d", rep)
		}
		return exec.Enc(c), nil
	}
	return exec.Value{}, fmt.Errorf("spill: unknown value kind %d", kindByte)
}
