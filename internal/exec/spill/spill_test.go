package spill

import (
	"math/big"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpq/internal/algebra"
	"mpq/internal/exec"
)

// cellEq compares two cell values structurally, including cipher payloads
// (Paillier group elements compare as big integers, symmetric ciphertexts as
// raw bytes).
func cellEq(a, b exec.Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case exec.KNull:
		return true
	case exec.KInt:
		return a.I == b.I
	case exec.KFloat:
		return a.F == b.F
	case exec.KString:
		return a.S == b.S
	case exec.KCipher:
		ca, cb := a.C, b.C
		if (ca == nil) != (cb == nil) {
			return false
		}
		if ca == nil {
			return true
		}
		if ca.Scheme != cb.Scheme || ca.KeyID != cb.KeyID || ca.Plain != cb.Plain || ca.Div != cb.Div {
			return false
		}
		if (ca.Phe == nil) != (cb.Phe == nil) {
			return false
		}
		if ca.Phe != nil {
			return ca.Phe.Cmp(cb.Phe) == 0
		}
		return string(ca.Data) == string(cb.Data)
	}
	return false
}

// roundTrip appends batches to a fresh run, reads them back, and diffs every
// cell. The run is released before returning; the factory dir must be empty
// afterwards (the orphan guard in TestRunFilesReleased checks).
func roundTrip(t *testing.T, dir string, batches []*exec.Batch) {
	t.Helper()
	f := NewFactory(dir)
	run, err := f.NewRun()
	if err != nil {
		t.Fatal(err)
	}
	defer run.Release()
	for _, b := range batches {
		if err := run.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := run.Finish(); err != nil {
		t.Fatal(err)
	}
	rd, err := run.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	for bi, want := range batches {
		got, err := rd.Next()
		if err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		if got == nil {
			t.Fatalf("batch %d: run ended early", bi)
		}
		if got.N != want.N || len(got.Cols) != len(want.Cols) {
			t.Fatalf("batch %d: shape %dx%d, want %dx%d", bi, got.N, len(got.Cols), want.N, len(want.Cols))
		}
		for ci := range want.Cols {
			if got.Cols[ci].Kind != want.Cols[ci].Kind {
				t.Fatalf("batch %d col %d: kind %d, want %d", bi, ci, got.Cols[ci].Kind, want.Cols[ci].Kind)
			}
			for ri := 0; ri < want.N; ri++ {
				g, w := got.Cols[ci].Value(ri), want.Cols[ci].Value(ri)
				if !cellEq(g, w) {
					t.Fatalf("batch %d col %d row %d: %v, want %v", bi, ci, ri, g, w)
				}
			}
		}
	}
	if extra, err := rd.Next(); err != nil || extra != nil {
		t.Fatalf("after last batch: (%v, %v), want (nil, nil)", extra, err)
	}
}

// nullable marks the given rows NULL in a typed column's bitmap.
func nullable(c exec.Column, rows ...int) exec.Column {
	words := 1
	for _, r := range rows {
		if r/64+1 > words {
			words = r/64 + 1
		}
	}
	c.Nulls = make([]uint64, words)
	for _, r := range rows {
		c.Nulls[r/64] |= 1 << (r % 64)
	}
	return c
}

// TestRoundTripEveryLayout spills one batch per column layout — with and
// without NULLs — and proves every cell survives the round trip.
func TestRoundTripEveryLayout(t *testing.T) {
	dict := []string{"AIR", "RAIL", "SHIP"}
	cdict := [][]byte{{0xde, 0xad}, {0xbe, 0xef}}
	phe := exec.Value{Kind: exec.KCipher, C: &exec.Cipher{
		Scheme: algebra.SchemePaillier, KeyID: "k2", Plain: exec.KInt, Div: 100,
		Phe: new(big.Int).SetInt64(123456789),
	}}
	sym := exec.Value{Kind: exec.KCipher, C: &exec.Cipher{
		Scheme: algebra.SchemeDeterministic, KeyID: "k1", Plain: exec.KString,
		Data: []byte{1, 2, 3, 4},
	}}

	cases := map[string]exec.Column{
		"int":        {Kind: exec.ColInt, Ints: []int64{-1, 0, 1 << 40}},
		"int-nulls":  nullable(exec.Column{Kind: exec.ColInt, Ints: []int64{7, 0, 9}}, 1),
		"float":      {Kind: exec.ColFloat, Floats: []float64{-0.5, 0, 3.25}},
		"str":        {Kind: exec.ColStr, Strs: []string{"", "a", "long string value"}},
		"str-nulls":  nullable(exec.Column{Kind: exec.ColStr, Strs: []string{"x", "", "z"}}, 1),
		"dict":       {Kind: exec.ColDict, Dict: dict, Codes: []uint32{2, 0, 1}},
		"dict-nulls": nullable(exec.Column{Kind: exec.ColDict, Dict: dict, Codes: []uint32{2, ^uint32(0), 1}}, 1),
		"cipherbytes": {Kind: exec.ColCipherBytes, Scheme: algebra.SchemeRandom, KeyID: "k1",
			Bytes:  [][]byte{{9, 8}, {7}, {6, 5, 4}},
			Plains: []exec.Kind{exec.KString, exec.KInt, exec.KString}},
		"cipherdict": {Kind: exec.ColCipherDict, Scheme: algebra.SchemeDeterministic, KeyID: "k1",
			CipherDict: cdict, Codes: []uint32{1, 0, 1}},
		"any": {Kind: exec.ColAny, Vals: []exec.Value{exec.Null(), phe, sym}},
	}
	for name, col := range cases {
		col := col
		t.Run(name, func(t *testing.T) {
			roundTrip(t, t.TempDir(), []*exec.Batch{{Cols: []exec.Column{col}, N: 3}})
		})
	}
}

// TestRoundTripSharedDictionaries appends several batches referencing the
// same dictionary: the definition must be written once and the reader must
// hand every batch one shared reconstructed slice.
func TestRoundTripSharedDictionaries(t *testing.T) {
	dict := []string{"alpha", "beta"}
	mk := func(codes ...uint32) *exec.Batch {
		return &exec.Batch{N: len(codes), Cols: []exec.Column{
			{Kind: exec.ColDict, Dict: dict, Codes: codes},
		}}
	}
	f := NewFactory(t.TempDir())
	run, err := f.NewRun()
	if err != nil {
		t.Fatal(err)
	}
	defer run.Release()
	for _, b := range []*exec.Batch{mk(0, 1), mk(1, 1, 0), mk(0)} {
		if err := run.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := run.Finish(); err != nil {
		t.Fatal(err)
	}
	rd, err := run.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	var first []string
	for bi := 0; ; bi++ {
		b, err := rd.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		got := b.Cols[0].Dict
		if first == nil {
			first = got
		} else if &first[0] != &got[0] {
			t.Fatalf("batch %d: dictionary not shared across the run", bi)
		}
	}
	if first == nil {
		t.Fatal("no batches read back")
	}
}

// corruptAt flips one byte of the single run file under dir.
func corruptAt(t *testing.T, dir string, offset int64) {
	t.Helper()
	name := runFile(t, dir)
	f, err := os.OpenFile(name, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, offset); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xff
	if _, err := f.WriteAt(buf, offset); err != nil {
		t.Fatal(err)
	}
}

func runFile(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "mpqspill-*.run"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected exactly one run file, got %v (%v)", matches, err)
	}
	return matches[0]
}

// TestCorruptedRunDetected flips a payload byte of a finished run and
// truncates another copy mid-frame: the reader must fail loudly on both, not
// return wrong rows.
func TestCorruptedRunDetected(t *testing.T) {
	build := func(dir string) exec.SpillRun {
		f := NewFactory(dir)
		run, err := f.NewRun()
		if err != nil {
			t.Fatal(err)
		}
		b := &exec.Batch{N: 4, Cols: []exec.Column{
			{Kind: exec.ColInt, Ints: []int64{1, 2, 3, 4}},
			{Kind: exec.ColStr, Strs: []string{"a", "b", "c", "d"}},
		}}
		if err := run.Append(b); err != nil {
			t.Fatal(err)
		}
		if err := run.Finish(); err != nil {
			t.Fatal(err)
		}
		return run
	}

	t.Run("flipped-byte", func(t *testing.T) {
		dir := t.TempDir()
		run := build(dir)
		defer run.Release()
		// magic(8) + version(1) + frame header(8) puts 17 at the first
		// payload byte.
		corruptAt(t, dir, 20)
		rd, err := run.Open()
		if err != nil {
			t.Fatal(err)
		}
		defer rd.Close()
		if _, err := rd.Next(); err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("corrupted payload read back: err=%v", err)
		}
	})

	t.Run("truncated", func(t *testing.T) {
		dir := t.TempDir()
		run := build(dir)
		defer run.Release()
		name := runFile(t, dir)
		info, err := os.Stat(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(name, info.Size()-3); err != nil {
			t.Fatal(err)
		}
		rd, err := run.Open()
		if err != nil {
			t.Fatal(err)
		}
		defer rd.Close()
		if _, err := rd.Next(); err == nil || !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("truncated run read back: err=%v", err)
		}
	})
}

// TestRunFilesReleased proves Release removes the backing file in every life
// cycle state — unfinished, finished, and mid-read — so no spill files
// outlive their run.
func TestRunFilesReleased(t *testing.T) {
	dir := t.TempDir()
	f := NewFactory(dir)
	b := &exec.Batch{N: 1, Cols: []exec.Column{{Kind: exec.ColInt, Ints: []int64{42}}}}

	unfinished, err := f.NewRun()
	if err != nil {
		t.Fatal(err)
	}
	if err := unfinished.Append(b); err != nil {
		t.Fatal(err)
	}
	if err := unfinished.Release(); err != nil {
		t.Fatal(err)
	}

	finished, err := f.NewRun()
	if err != nil {
		t.Fatal(err)
	}
	if err := finished.Append(b); err != nil {
		t.Fatal(err)
	}
	if err := finished.Finish(); err != nil {
		t.Fatal(err)
	}
	rd, err := finished.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); err != nil {
		t.Fatal(err)
	}
	rd.Close()
	if err := finished.Release(); err != nil {
		t.Fatal(err)
	}
	if err := finished.Release(); err != nil { // idempotent
		t.Fatal(err)
	}

	left, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("orphaned spill files left behind: %v", left)
	}
}
