package exec

import (
	"fmt"
	"testing"

	"mpq/internal/algebra"
	"mpq/internal/crypto"
)

// BenchmarkEncryptValue vs BenchmarkEncryptBatch: the value-at-a-time
// operator path against the column-wise batch path, per scheme. The batch
// path additionally amortizes the exec-level costs — plaintext encoding
// arena, Cipher allocation, ring cipher resolution — on top of the crypto
// package's batched primitives. BENCH_crypto.json records a measured run.

const benchPaillierPrimeBits = 256

func benchRing(b *testing.B) *crypto.KeyRing {
	b.Helper()
	ring, err := crypto.NewKeyRing("kB", benchPaillierPrimeBits)
	if err != nil {
		b.Fatal(err)
	}
	return ring
}

func benchColumn(scheme algebra.Scheme, n int) []Value {
	numeric := scheme == algebra.SchemeOPE || scheme == algebra.SchemePaillier
	out := make([]Value, n)
	for i := range out {
		switch {
		case numeric || i%2 == 0:
			out[i] = Int(int64(i * 3))
		default:
			out[i] = String(fmt.Sprintf("cell-%d", i))
		}
	}
	return out
}

func benchSchemes() []algebra.Scheme {
	return []algebra.Scheme{
		algebra.SchemeDeterministic, algebra.SchemeRandom,
		algebra.SchemeOPE, algebra.SchemePaillier,
	}
}

func benchN(scheme algebra.Scheme, base int) int {
	if scheme == algebra.SchemePaillier {
		return base / 16 // Paillier cells are ~3 orders of magnitude dearer
	}
	return base
}

func BenchmarkEncryptValue(b *testing.B) {
	for _, scheme := range benchSchemes() {
		b.Run(string(scheme), func(b *testing.B) {
			ring := benchRing(b)
			vals := benchColumn(scheme, benchN(scheme, 1024))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += len(vals) {
				for _, v := range vals {
					if _, err := EncryptValue(ring, scheme, v); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkEncryptBatch(b *testing.B) {
	for _, scheme := range benchSchemes() {
		b.Run(string(scheme), func(b *testing.B) {
			ring := benchRing(b)
			vals := benchColumn(scheme, benchN(scheme, 1024))
			if scheme == algebra.SchemePaillier {
				if err := ring.PK.Precompute(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += len(vals) {
				if _, err := EncryptColumn(ring, scheme, vals); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecryptValue(b *testing.B) {
	for _, scheme := range benchSchemes() {
		b.Run(string(scheme), func(b *testing.B) {
			ring := benchRing(b)
			e := NewExecutor()
			e.Keys.Add(ring)
			e.ValueCrypto = true
			rows := benchCipherRows(b, ring, scheme, benchN(scheme, 1024))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += len(rows) {
				if _, err := e.DecryptRows(rows); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecryptBatch(b *testing.B) {
	for _, scheme := range benchSchemes() {
		b.Run(string(scheme), func(b *testing.B) {
			ring := benchRing(b)
			e := NewExecutor()
			e.Keys.Add(ring)
			rows := benchCipherRows(b, ring, scheme, benchN(scheme, 1024))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += len(rows) {
				if _, err := e.DecryptRows(rows); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchCipherRows(b *testing.B, ring *crypto.KeyRing, scheme algebra.Scheme, n int) [][]Value {
	b.Helper()
	col, err := EncryptColumn(ring, scheme, benchColumn(scheme, n))
	if err != nil {
		b.Fatal(err)
	}
	rows := make([][]Value, n)
	for i := range rows {
		rows[i] = col[i : i+1]
	}
	return rows
}
