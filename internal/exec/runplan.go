package exec

import (
	"mpq/internal/planner"
)

// RunPlan executes a planned query end to end: evaluates the algebra tree,
// applies ordering and limit, and projects the output columns. It returns
// the result table and the display headers.
func (e *Executor) RunPlan(p *planner.Plan) (*Table, []string, error) {
	t, err := e.Run(p.Root)
	if err != nil {
		return nil, nil, err
	}
	if len(p.OrderBy) > 0 {
		specs := make([]SortSpec, len(p.OrderBy))
		for i, o := range p.OrderBy {
			specs[i] = SortSpec{Index: o.Index, Desc: o.Desc}
		}
		if err := t.SortBy(specs); err != nil {
			return nil, nil, err
		}
	}
	indices := make([]int, len(p.Output))
	headers := make([]string, len(p.Output))
	for i, oc := range p.Output {
		indices[i] = oc.Index
		headers[i] = oc.Name
	}
	out := t.Project(indices)
	if p.Limit >= 0 && len(out.Rows) > p.Limit {
		out.Rows = out.Rows[:p.Limit]
	}
	return out, headers, nil
}

// DecryptTable returns a copy of the relation with every encrypted value
// the executor holds keys for decrypted. This is the user-side finalization
// step: the querying user receives the (possibly encrypted) result of the
// root fragment and decrypts it with the query-plan keys before consuming
// it. Decryption runs on the batched path (DecryptRows): ciphers grouped by
// scheme and key, one batched call per group.
func (e *Executor) DecryptTable(t *Table) (*Table, error) {
	rows, err := e.DecryptRows(t.Rows)
	if err != nil {
		return nil, err
	}
	out := NewTable(t.Schema)
	out.Rows = rows
	return out, nil
}
