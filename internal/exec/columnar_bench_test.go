package exec_test

import (
	"fmt"
	"math/rand"
	"testing"

	"mpq/internal/exec"
	"mpq/internal/planner"
	"mpq/internal/tpch"
)

// BenchmarkColumnarOps isolates the operators the columnar layout targets —
// selective filters and grouped aggregation — on TPC-H-shaped plans, pitting
// the columnar batch pipeline against the row-at-a-time materializing
// baseline. BenchmarkInterior covers the full query mix; this benchmark is
// the per-operator microscope (filter: Q6's conjunctive range scan;
// aggregate: Q1's wide grouped aggregation; filter-aggregate: Q14's
// join-free shape via Q6 with the revenue aggregate).
func BenchmarkColumnarOps(b *testing.B) {
	const sf = 0.01
	cat := tpch.Catalog(sf)
	tables := tpch.Generate(sf, 99)
	pl := planner.New(cat)

	shapes := []struct {
		name string
		sql  string
	}{
		{"filter", "SELECT l_orderkey FROM lineitem WHERE l_shipdate >= 19940101 AND l_shipdate < 19950101 AND l_discount >= 0.05 AND l_discount <= 0.07 AND l_quantity < 24"},
		{"aggregate", "SELECT l_returnflag, l_linestatus, sum(l_quantity), sum(l_extendedprice), avg(l_discount), count(*) FROM lineitem GROUP BY l_returnflag, l_linestatus"},
		{"filter-aggregate", "SELECT sum(l_extendedprice) FROM lineitem WHERE l_shipdate >= 19940101 AND l_shipdate < 19950101 AND l_discount >= 0.05 AND l_discount <= 0.07"},
	}
	for _, sh := range shapes {
		plan, err := pl.PlanSQL(sh.sql)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			name string
			mat  bool
		}{{"row-oracle", true}, {"columnar", false}} {
			b.Run(fmt.Sprintf("%s/%s", sh.name, mode.name), func(b *testing.B) {
				e := exec.NewExecutor()
				e.Materializing = mode.mat
				for name, t := range tables {
					e.Tables[name] = t
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := e.RunPlan(plan); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkColumnarize measures the scan-side conversion tax: transposing
// row-major table windows into typed column vectors, and materializing them
// back to rows at the boundary.
func BenchmarkColumnarize(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const n = 4096
	rows := make([][]exec.Value, n)
	for i := range rows {
		rows[i] = []exec.Value{
			exec.Int(rng.Int63()),
			exec.Float(rng.Float64()),
			exec.String(fmt.Sprintf("cust%04d", rng.Intn(1000))),
			exec.Int(rng.Int63n(100)),
		}
	}
	b.Run("rows-to-batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exec.NewBatchFromRows(rows, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	batch, err := exec.NewBatchFromRows(rows, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("batch-to-rows", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = batch.Rows()
		}
	})
}
