package exec

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"mpq/internal/algebra"
	"mpq/internal/obs"
	"mpq/internal/sql"
)

// Morsel-driven parallelism. A fragment's pipeline segment that (1) is
// anchored at a base-table scan and (2) consists only of order-preserving
// per-row operators — filter, projection, UDF, encrypt, decrypt, hash-join
// probe — can be split into morsels: fixed row-ranges over the table's
// cached column vectors. A pool of Workers goroutines claims morsels
// dynamically, each running a private compiled copy of the operator chain
// over its claimed range, and the results merge deterministically in morsel
// order. Because every chain operator preserves row order and morsel
// boundaries depend only on MorselRows (never on Workers or timing), the
// merged output is row-for-row identical to single-threaded execution.
//
// Pipeline breakers split differently: a group-by above a parallelizable
// chain aggregates per-morsel partial tables on the pool and merges them in
// morsel order (gather-mode accumulators make float summation bit-identical
// to the sequential fold — see groupAcc); a hash join's build side is
// produced by its own — possibly parallel — subtree and merged into one
// shared read-only index before the probe workers start.

// DefaultMorselRows is the fixed morsel length when the executor does not
// override it: large enough to amortize per-morsel Open/Close, small enough
// to balance skewed filters across workers, and a multiple of 64 so null
// bitmaps slice without shifting.
const DefaultMorselRows = 4096

// morselRows returns the executor's configured morsel length.
func (e *Executor) morselRows() int {
	if e.MorselRows > 0 {
		return e.MorselRows
	}
	return DefaultMorselRows
}

// parWorkers returns the effective morsel worker count (1 = sequential).
func (e *Executor) parWorkers() int {
	if e.Workers > 1 {
		return e.Workers
	}
	return 1
}

// chainExecutor returns the executor worker chains run under: a shallow
// copy sharing all durable state with the intra-batch crypto pool disabled
// — morsel workers already saturate the cores, so nested crypto fan-out
// would only contend.
func (e *Executor) chainExecutor() *Executor {
	ce := *e
	ce.CryptoWorkers = -1
	return &ce
}

// chainStep instantiates one operator of a worker's private chain over the
// worker's child operator. All compiled state a step closes over (predicate
// closures, projection maps, key rings, join indexes) is immutable during
// execution, so steps are shared across workers while every instantiated
// operator keeps its own buffers and cursors.
type chainStep func(child Operator) Operator

// chainJoin carries one join of a chain: the compiled build side and the
// state built from it at run start, shared read-only by every worker. Hash
// joins (hashR >= 0) build one index; nested-loop joins and products
// (hashR < 0) drain the right side once into a shared row set.
type chainJoin struct {
	right Operator
	hashR int // right key column, or -1 for nested-loop/product
	idx   *joinIndex
	rows  [][]Value
}

// chain is a compiled morsel-parallelizable pipeline segment: the anchor
// table scan (table, projection) plus the operator steps stacked above it,
// bottom-up.
type chain struct {
	t            *Table
	project      []int // nil = identity
	anchorSchema []algebra.Attr
	steps        []chainStep
	joins        []*chainJoin
	schema       []algebra.Attr // the chain's output schema
	work         bool           // a step performs real per-row work
}

// planChain inspects the subtree rooted at n and compiles it into a chain
// when it is morsel-parallelizable: a stack of order-preserving per-row
// operators over a single base-table (or materialized-relation) scan.
// Returns ok=false — with no error — when the shape does not qualify, in
// which case the caller falls back to the sequential build.
func (e *Executor) planChain(n algebra.Node) (*chain, bool, error) {
	if _, ok := e.Sources[n]; ok {
		return nil, false, nil // exchange streams cannot be range-scanned
	}
	if t, ok := e.Materialized[n]; ok {
		return &chain{t: t, anchorSchema: t.Schema, schema: t.Schema}, true, nil
	}
	switch x := n.(type) {
	case *algebra.Base:
		t, ok := e.Tables[x.Name]
		if !ok {
			return nil, false, fmt.Errorf("exec: no table %q", x.Name)
		}
		indices := make([]int, len(x.Attrs))
		for i, a := range x.Attrs {
			ix := t.ColIndex(a)
			if ix < 0 {
				return nil, false, fmt.Errorf("exec: table %q has no column %s", x.Name, a)
			}
			indices[i] = ix
		}
		if identityProjection(indices, len(t.Schema)) {
			indices = nil
		}
		schema := t.Schema
		if indices != nil {
			schema = make([]algebra.Attr, len(indices))
			for i, ix := range indices {
				schema[i] = t.Schema[ix]
			}
		}
		return &chain{t: t, project: indices, anchorSchema: schema, schema: schema}, true, nil

	case *algebra.Select:
		c, ok, err := e.planChain(x.Child)
		if !ok || err != nil {
			return nil, false, err
		}
		pred, err := e.compileColPred(x.Pred, resolverFor(c.schema, x.Child))
		if err != nil {
			return nil, false, err
		}
		c.steps = append(c.steps, func(child Operator) Operator {
			return &filterOp{child: child, pred: pred}
		})
		c.work = true
		return c, true, nil

	case *algebra.Project:
		c, ok, err := e.planChain(x.Child)
		if !ok || err != nil {
			return nil, false, err
		}
		in := c.schema
		indices := make([]int, len(x.Attrs))
		for i, a := range x.Attrs {
			ix := schemaIndex(in, a)
			if ix < 0 {
				return nil, false, fmt.Errorf("exec: projection attribute %s not in input", a)
			}
			indices[i] = ix
		}
		if identityProjection(indices, len(in)) {
			return c, true, nil
		}
		schema := make([]algebra.Attr, len(indices))
		for i, ix := range indices {
			schema[i] = in[ix]
		}
		c.steps = append(c.steps, func(child Operator) Operator {
			return &projectOp{child: child, indices: indices, schema: schema}
		})
		c.schema = schema
		return c, true, nil

	case *algebra.UDF:
		c, ok, err := e.planChain(x.Child)
		if !ok || err != nil {
			return nil, false, err
		}
		fn, ok := e.UDFs[x.Name]
		if !ok {
			return nil, false, fmt.Errorf("exec: udf %q not registered", x.Name)
		}
		in := c.schema
		argIdx := make([]int, len(x.Args))
		for i, a := range x.Args {
			ix := schemaIndex(in, a)
			if ix < 0 {
				return nil, false, fmt.Errorf("exec: udf argument %s not in input", a)
			}
			argIdx[i] = ix
		}
		outSchema := x.Schema()
		srcIdx := make([]int, len(outSchema))
		for i, a := range outSchema {
			if a == x.Out {
				srcIdx[i] = -1
				continue
			}
			srcIdx[i] = schemaIndex(in, a)
		}
		node := x
		c.steps = append(c.steps, func(child Operator) Operator {
			return &udfOp{child: child, node: node, fn: fn, argIdx: argIdx, srcIdx: srcIdx, schema: outSchema}
		})
		c.schema = outSchema
		c.work = true
		return c, true, nil

	case *algebra.Encrypt:
		c, ok, err := e.planChain(x.Child)
		if !ok || err != nil {
			return nil, false, err
		}
		in := c.schema
		cols := make([]encCol, 0, len(x.Attrs))
		for _, a := range x.Attrs {
			scheme := x.Schemes[a]
			if scheme == "" {
				scheme = algebra.SchemeDeterministic
			}
			ring, err := e.Keys.Get(x.KeyIDs[a])
			if err != nil {
				return nil, false, fmt.Errorf("exec: encrypting %s: %w", a, err)
			}
			var idx []int
			for ci, sa := range in {
				if sa == a {
					idx = append(idx, ci)
				}
			}
			cols = append(cols, newEncCol(a, scheme, ring, idx))
		}
		ce := e.chainExecutor()
		c.steps = append(c.steps, func(child Operator) Operator {
			return &encryptOp{child: child, e: ce, cols: cols}
		})
		c.work = true
		return c, true, nil

	case *algebra.Decrypt:
		c, ok, err := e.planChain(x.Child)
		if !ok || err != nil {
			return nil, false, err
		}
		in := c.schema
		cols := make([]decCol, 0, len(x.Attrs))
		for _, a := range x.Attrs {
			var idx []int
			for ci, sa := range in {
				if sa == a {
					idx = append(idx, ci)
				}
			}
			cols = append(cols, decCol{attr: a, idx: idx})
		}
		ce := e.chainExecutor()
		c.steps = append(c.steps, func(child Operator) Operator {
			return &decryptOp{child: child, e: ce, cols: cols, ring: ce.ringCache()}
		})
		c.work = true
		return c, true, nil

	case *algebra.Join:
		if e.Mem != nil {
			// Under a memory budget the join build must be able to reserve
			// and spill; the shared pre-built index path stays sequential.
			return nil, false, nil
		}
		c, ok, err := e.planChain(x.L)
		if !ok || err != nil {
			return nil, false, err
		}
		right, err := e.Build(x.R)
		if err != nil {
			return nil, false, err
		}
		ls, rs := c.schema, right.Schema()
		schema := append(append([]algebra.Attr{}, ls...), rs...)
		hashL, hashR := -1, -1
		var residual []algebra.Pred
		for _, cj := range algebra.Conjuncts(x.Cond) {
			if aa, ok := cj.(*algebra.CmpAA); ok && aa.Op == sql.OpEq && hashL < 0 {
				li, ri := schemaIndex(ls, aa.L), schemaIndex(rs, aa.R)
				if li < 0 || ri < 0 {
					li, ri = schemaIndex(ls, aa.R), schemaIndex(rs, aa.L)
				}
				if li >= 0 && ri >= 0 {
					hashL, hashR = li, ri
					continue
				}
			}
			residual = append(residual, cj)
		}
		batch := e.batchSize()
		leftWidth := len(ls)
		if hashL < 0 {
			// Nested-loop join: every worker streams its morsels' product
			// against the shared pre-drained right rows and filters by the
			// full condition. Left order is preserved per morsel, so the
			// morsel-order merge is row-identical to the sequential stream.
			full, err := e.compileColPred(x.Cond, plainResolver(schema))
			if err != nil {
				return nil, false, err
			}
			cj := &chainJoin{right: right, hashR: -1}
			c.joins = append(c.joins, cj)
			c.steps = append(c.steps, func(child Operator) Operator {
				prod := &productOp{left: child, schema: schema, batch: batch,
					shared: true, rightRows: cj.rows}
				return &filterOp{child: prod, pred: full}
			})
			c.schema = schema
			c.work = true
			return c, true, nil
		}
		var resPred predFn
		if rp := algebra.And(residual...); rp != nil {
			resPred, err = e.compilePred(rp, plainResolver(schema))
			if err != nil {
				return nil, false, err
			}
		}
		cj := &chainJoin{right: right, hashR: hashR}
		c.joins = append(c.joins, cj)
		c.steps = append(c.steps, func(child Operator) Operator {
			return &hashJoinOp{
				left: child, schema: schema,
				hashL: hashL, hashR: hashR,
				residual: resPred, batch: batch, leftWidth: leftWidth,
				idx: cj.idx, shared: true,
			}
		})
		c.schema = schema
		c.work = true
		return c, true, nil

	case *algebra.Product:
		if e.Mem != nil {
			return nil, false, nil // products stay sequential under a budget
		}
		c, ok, err := e.planChain(x.L)
		if !ok || err != nil {
			return nil, false, err
		}
		right, err := e.Build(x.R)
		if err != nil {
			return nil, false, err
		}
		schema := append(append([]algebra.Attr{}, c.schema...), right.Schema()...)
		cj := &chainJoin{right: right, hashR: -1}
		c.joins = append(c.joins, cj)
		batch := e.batchSize()
		c.steps = append(c.steps, func(child Operator) Operator {
			return &productOp{left: child, schema: schema, batch: batch,
				shared: true, rightRows: cj.rows}
		})
		c.schema = schema
		c.work = true
		return c, true, nil
	}
	return nil, false, nil
}

// morselScan serves one assigned row-range of pre-resolved column vectors
// in zero-copy batch windows: the anchor of a worker's private chain,
// re-assigned and re-opened per claimed morsel.
type morselScan struct {
	schema []algebra.Attr
	cols   []Column
	batch  int
	ctx    context.Context // run cancellation, probed per window
	lo, hi int
	pos    int
}

func (s *morselScan) assign(lo, hi int)      { s.lo, s.hi = lo, hi }
func (s *morselScan) Schema() []algebra.Attr { return s.schema }
func (s *morselScan) Open() error            { s.pos = s.lo; return nil }
func (s *morselScan) Close() error           { return nil }
func (s *morselScan) Next() (*Batch, error) {
	if err := ctxErr(s.ctx); err != nil {
		return nil, err
	}
	return scanWindow(s.cols, &s.pos, s.hi, s.batch), nil
}

// chainRun is the shared run state of one morsel-parallel execution: the
// resolved (and projected) anchor columns and the morsel geometry.
type chainRun struct {
	c        *chain
	cols     []Column
	ctx      context.Context // run cancellation, handed to every worker scan
	total    int
	morsel   int
	nMorsels int
}

// prepareChain resolves the anchor's cached columns and builds every join
// index of the chain (the build sides run now, before any worker starts, so
// probe workers share finished, immutable indexes).
func (e *Executor) prepareChain(c *chain) (*chainRun, error) {
	cols, total, err := c.t.snapshotColumns()
	if err != nil {
		return nil, err
	}
	for _, cj := range c.joins {
		if cj.hashR < 0 {
			t, err := Drain(cj.right)
			if err != nil {
				return nil, err
			}
			cj.rows = t.Rows
			continue
		}
		idx, err := buildJoinIndex(cj.right, cj.hashR)
		if err != nil {
			return nil, err
		}
		cj.idx = idx
	}
	morsel := e.morselRows()
	return &chainRun{
		c:      c,
		cols:   projectCols(cols, c.project),
		ctx:    e.Ctx,
		total:  total,
		morsel: morsel, nMorsels: (total + morsel - 1) / morsel,
	}, nil
}

// bounds returns morsel idx's row range.
func (r *chainRun) bounds(idx int) (lo, hi int) {
	lo = idx * r.morsel
	hi = lo + r.morsel
	if hi > r.total {
		hi = r.total
	}
	return lo, hi
}

// newWorkerChain instantiates one worker's private operator chain over its
// own morsel scan.
func (r *chainRun) newWorkerChain(batch int) (Operator, *morselScan) {
	src := &morselScan{schema: r.c.anchorSchema, cols: r.cols, batch: batch, ctx: r.ctx}
	var op Operator = src
	for _, step := range r.c.steps {
		op = step(op)
	}
	return op, src
}

// morselOut is one finished morsel: the chain's output batches (streaming
// merges) or a partial aggregation table (group-by builds).
type morselOut struct {
	idx     int
	batches []*Batch
	part    *groupTable
	err     error
}

// drainMorsel runs op over morsel idx of its assigned scan, feeding every
// output batch to visit. A Close error surfaces only when nothing failed
// earlier — the one drain skeleton every morsel worker shares.
func drainMorsel(op Operator, src *morselScan, r *chainRun, idx int, visit func(*Batch) error) error {
	lo, hi := r.bounds(idx)
	src.assign(lo, hi)
	if err := op.Open(); err != nil {
		op.Close()
		return err
	}
	var err error
	for err == nil {
		var b *Batch
		if b, err = op.Next(); err != nil || b == nil {
			break
		}
		err = visit(b)
	}
	if cerr := op.Close(); err == nil {
		err = cerr
	}
	return err
}

// runChainMorsel runs one worker's chain over morsel idx, collecting the
// output batches.
func runChainMorsel(op Operator, src *morselScan, r *chainRun, idx int) morselOut {
	out := morselOut{idx: idx}
	out.err = drainMorsel(op, src, r, idx, func(b *Batch) error {
		out.batches = append(out.batches, b)
		return nil
	})
	return out
}

// runMorsels is the one morsel scheduler both parallel paths share: workers
// goroutines each instantiate their private state via newWorker (which
// receives the worker's slot index, letting traced runs attribute morsel
// claims per worker) and then claim morsel indexes in ascending order off
// an atomic counter, ticket-bounded so at most `bound` morsels are claimed
// but not yet consumed (a slow head morsel never lets fast workers race
// arbitrarily far ahead); consume receives every finished morsel on the
// caller's goroutine in strict ascending morsel order. A consume error (or
// a morsel's own error, surfaced through consume) stops further consumption
// but the drain continues, so no worker is ever left blocked; the first
// error in morsel order is returned. A receive from abort (nil = never)
// stops the run early. Workers always exit before runMorsels returns.
func runMorsels(workers, nMorsels, bound int, abort <-chan struct{},
	newWorker func(w int) func(idx int) morselOut, consume func(morselOut) error) error {
	if workers > nMorsels {
		workers = nMorsels
	}
	results := make(chan morselOut, bound)
	tickets := make(chan struct{}, bound)
	done := make(chan struct{})
	var wg sync.WaitGroup
	defer wg.Wait()   // runs after close(done): workers unblock and exit
	defer close(done) //
	var claim atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			work := newWorker(w)
			for {
				select {
				case tickets <- struct{}{}:
				case <-done:
					return
				}
				idx := int(claim.Add(1)) - 1
				if idx >= nMorsels {
					return
				}
				out := workProtected(work, idx)
				select {
				case results <- out:
				case <-done:
					return
				}
			}
		}(w)
	}
	pending := make(map[int]morselOut)
	var firstErr error
	for next := 0; next < nMorsels; next++ {
		out, ok := pending[next]
		for !ok {
			select {
			case out = <-results:
			case <-abort:
				if firstErr == nil {
					firstErr = errMorselsAborted
				}
				return firstErr
			}
			pending[out.idx] = out
			out, ok = pending[next]
		}
		delete(pending, next)
		<-tickets
		if firstErr != nil {
			continue // already failing: drain remaining claims only
		}
		if err := consume(out); err != nil {
			firstErr = err
		}
	}
	return firstErr
}

// errMorselsAborted reports a run torn down via the abort channel (operator
// Close mid-stream); the origin of the teardown carries the real cause.
var errMorselsAborted = fmt.Errorf("exec: morsel run aborted")

// workProtected runs one morsel with the worker-boundary panic guard: a
// panicking chain (a buggy UDF, an injected fault) becomes that morsel's
// error instead of killing the process, and the scheduler tears the run
// down through the ordinary error path — no worker or merger is left
// blocked.
func workProtected(work func(idx int) morselOut, idx int) (out morselOut) {
	defer func() {
		if r := recover(); r != nil {
			out = morselOut{idx: idx, err: NewPanicError("morsel worker", r)}
		}
	}()
	return work(idx)
}

// parallelOp executes a compiled chain morsel-parallel and re-emits the
// output batches in morsel order: a drop-in Operator whose stream is
// row-for-row identical to the sequential chain. Open starts the scheduler
// on a merger goroutine; Next pulls already-ordered morsels off its output
// channel.
type parallelOp struct {
	e       *Executor
	c       *chain
	batch   int
	workers int
	sp      *obs.Span // traced runs: per-worker morsel claim accounting

	merged  chan morselOut
	done    chan struct{}
	closing *sync.Once
	wg      sync.WaitGroup

	cur    []*Batch
	curPos int
	failed error
	opened bool
}

func (p *parallelOp) Schema() []algebra.Attr { return p.c.schema }

func (p *parallelOp) Open() error {
	p.teardown() // support re-Open after a previous run
	run, err := p.e.prepareChain(p.c)
	if err != nil {
		return err
	}
	p.merged = make(chan morselOut)
	p.done = make(chan struct{})
	p.closing = new(sync.Once)
	p.cur, p.curPos, p.failed = nil, 0, nil
	p.opened = true
	if p.sp != nil {
		p.sp.InitWorkers(p.workers)
	}
	done, merged := p.done, p.merged
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer close(merged)
		// Merger-boundary panic guard: a panic on this goroutine surfaces
		// as a failed morsel on the merged channel (before its close), so
		// Next reports it as an ordinary error instead of the process dying.
		defer func() {
			if r := recover(); r != nil {
				select {
				case merged <- morselOut{err: NewPanicError("morsel merge", r)}:
				case <-done:
				}
			}
		}()
		runMorsels(p.workers, run.nMorsels, 2*p.workers, done,
			func(w int) func(idx int) morselOut {
				op, src := run.newWorkerChain(p.batch)
				return func(idx int) morselOut {
					if p.sp != nil {
						p.sp.Claim(w)
					}
					return runChainMorsel(op, src, run, idx)
				}
			},
			func(out morselOut) error {
				select {
				case merged <- out:
				case <-done:
					return errMorselsAborted
				}
				return out.err // stop consuming after a failed morsel
			})
	}()
	return nil
}

func (p *parallelOp) Next() (*Batch, error) {
	if p.failed != nil {
		return nil, p.failed
	}
	if !p.opened {
		return nil, nil
	}
	for {
		if p.cur != nil {
			if p.curPos < len(p.cur) {
				b := p.cur[p.curPos]
				p.curPos++
				return b, nil
			}
			p.cur = nil
		}
		out, ok := <-p.merged
		if !ok {
			return nil, nil // every morsel consumed
		}
		if out.err != nil {
			p.failed = out.err
			p.teardown()
			return nil, p.failed
		}
		p.cur, p.curPos = out.batches, 0
	}
}

// teardown aborts the scheduler and waits for the merger and its workers.
func (p *parallelOp) teardown() {
	if !p.opened {
		return
	}
	p.closing.Do(func() { close(p.done) })
	for range p.merged { // unblock a merger mid-send, drain to close
	}
	p.wg.Wait()
	p.opened, p.merged, p.done = false, nil, nil
}

func (p *parallelOp) Close() error {
	p.teardown()
	return nil
}

// buildParallel compiles n into a morsel-parallel operator when its shape
// qualifies and the anchor relation is large enough to split; ok=false
// falls back to the sequential build.
func (e *Executor) buildParallel(n algebra.Node) (Operator, bool, error) {
	switch n.(type) {
	case *algebra.Select, *algebra.Project, *algebra.UDF, *algebra.Encrypt, *algebra.Decrypt,
		*algebra.Join, *algebra.Product:
	default:
		return nil, false, nil // bare scans and pipeline breakers have their own paths
	}
	c, ok, err := e.planChain(n)
	if err != nil || !ok {
		return nil, false, err
	}
	if !c.work || c.t.Len() <= e.morselRows() {
		return nil, false, nil // nothing to win: rebuild sequentially
	}
	return &parallelOp{e: e, c: c, batch: e.batchSize(), workers: e.parWorkers()}, true, nil
}

// buildParallel aggregates the group-by's input chain morsel-parallel on
// the shared scheduler: each worker aggregates its claimed morsels into
// gather-mode partial tables, and the caller's goroutine merges them into
// gt in strict morsel order.
func (g *groupByOp) buildParallel(gt *groupTable) error {
	e := g.e
	run, err := e.prepareChain(g.par)
	if err != nil {
		return err
	}
	batch := e.batchSize()
	if g.sp != nil {
		g.sp.InitWorkers(e.parWorkers())
	}
	return runMorsels(e.parWorkers(), run.nMorsels, 2*e.parWorkers(), nil,
		func(w int) func(idx int) morselOut {
			op, src := run.newWorkerChain(batch)
			// Per-worker ring cache: partial adds resolve Paillier rings
			// without sharing a mutable map across goroutines.
			ring := e.ringCache()
			return func(idx int) morselOut {
				if g.sp != nil {
					g.sp.Claim(w)
				}
				out := morselOut{idx: idx, part: newGroupTable(g.keyIdx, g.aggIdx, g.specs, true, ring)}
				out.err = drainMorsel(op, src, run, idx, out.part.addBatch)
				return out
			}
		},
		func(out morselOut) error {
			if out.err != nil {
				return out.err
			}
			return gt.mergeFrom(out.part)
		})
}
