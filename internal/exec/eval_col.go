package exec

import (
	"fmt"
	"sort"
	"sync/atomic"

	"mpq/internal/algebra"
	"mpq/internal/crypto"
	"mpq/internal/sql"
)

// Columnar predicate evaluation: compiled predicates consume a batch and a
// selection vector (ascending row indexes still alive) and return the
// surviving subset, so conjunct k only ever touches the rows conjunct k-1
// kept — the vectorized counterpart of row-at-a-time short-circuiting. The
// monomorphic fast paths run tight loops over the typed column vectors
// (int64, float64, string, ciphertext bytes) with no Value boxing; columns
// in the generic layout fall back to the shared per-cell evaluators, which
// keep the row path's semantics (and error messages) exactly.

// colPred filters sel against b's columns. sel is ascending and may be
// rewritten in place; the result is the surviving subset, still ascending.
type colPred func(b *Batch, sel []int32) ([]int32, error)

// cellFn evaluates a compiled comparison against one materialized cell.
type cellFn func(v Value) (bool, error)

// compileColPred compiles a predicate tree to its columnar form. The
// resolver is the same schema resolver the row compiler uses.
func (e *Executor) compileColPred(p algebra.Pred, r *schemaResolver) (colPred, error) {
	switch x := p.(type) {
	case *algebra.CmpAV:
		return e.compileColCmpAV(x, r)
	case *algebra.CmpAA:
		return e.compileColCmpAA(x, r)
	case *algebra.AndPred:
		subs := make([]colPred, len(x.Preds))
		for i, q := range x.Preds {
			f, err := e.compileColPred(q, r)
			if err != nil {
				return nil, err
			}
			subs[i] = f
		}
		return func(b *Batch, sel []int32) ([]int32, error) {
			var err error
			for _, f := range subs {
				if len(sel) == 0 {
					return sel, nil
				}
				if sel, err = f(b, sel); err != nil {
					return nil, err
				}
			}
			return sel, nil
		}, nil
	case *algebra.OrPred:
		subs := make([]colPred, len(x.Preds))
		for i, q := range x.Preds {
			f, err := e.compileColPred(q, r)
			if err != nil {
				return nil, err
			}
			subs[i] = f
		}
		return func(b *Batch, sel []int32) ([]int32, error) {
			// Disjuncts keep short-circuit semantics set-wise: disjunct k
			// is evaluated only on the rows every earlier disjunct
			// rejected, so a row accepted early never reaches (and never
			// errors in) a later branch — exactly the row path's order.
			undecided := append([]int32(nil), sel...)
			var accepted [][]int32
			for _, f := range subs {
				if len(undecided) == 0 {
					break
				}
				work := append([]int32(nil), undecided...)
				passed, err := f(b, work)
				if err != nil {
					return nil, err
				}
				if len(passed) == 0 {
					continue
				}
				accepted = append(accepted, passed)
				undecided = diffSel(undecided, passed)
			}
			out := sel[:0]
			for _, lst := range accepted {
				out = append(out, lst...)
			}
			if len(accepted) > 1 {
				sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			}
			return out, nil
		}, nil
	case *algebra.NotPred:
		inner, err := e.compileColPred(x.Inner, r)
		if err != nil {
			return nil, err
		}
		return func(b *Batch, sel []int32) ([]int32, error) {
			work := append([]int32(nil), sel...)
			passed, err := inner(b, work)
			if err != nil {
				return nil, err
			}
			return diffSel(sel, passed), nil
		}, nil
	}
	return nil, fmt.Errorf("exec: unknown predicate %T", p)
}

// diffSel returns base minus sub (both ascending, sub ⊆ base), reusing
// base's storage.
func diffSel(base, sub []int32) []int32 {
	out := base[:0]
	si := 0
	for _, i := range base {
		if si < len(sub) && sub[si] == i {
			si++
			continue
		}
		out = append(out, i)
	}
	return out
}

// Three-way comparisons for the monomorphic loops.
func cmpI(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpS(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// dictAVMemo caches one attribute-vs-constant predicate's verdict per
// dictionary entry, so the per-row loop reduces to a code-indexed bool
// lookup and never touches the dictionary strings (an equality miss keeps
// every verdict false and selects nothing). Compiled predicate closures are
// shared read-only across morsel workers, so the memo is published through
// an atomic pointer; losing a publication race just recomputes an identical
// table.
type dictAVMemo struct {
	plainID  *string // identity of the plaintext dictionary memoized
	cipherID *[]byte // identity of the cipher dictionary memoized
	verdict  []bool  // verdict[code] — does the predicate hold for entry code
}

// compileColCmpAV compiles an attribute-vs-literal comparison. The typed
// fast paths compare the column vector directly against the pre-resolved
// constant; dictionary columns resolve the constant against the dictionary
// once and then test codes; ciphertext-byte columns compare against the
// dispatched encrypted constant; generic columns fall back to the shared
// cell evaluator.
func (e *Executor) compileColCmpAV(c *algebra.CmpAV, r *schemaResolver) (colPred, error) {
	ix, err := r.colFor(c.A, c.Agg)
	if err != nil {
		return nil, err
	}
	konst, hasKonst := e.Consts[c]
	rhs := litValue(c.V)
	op := c.Op
	cell := e.compileCellAV(c)
	var memo atomic.Pointer[dictAVMemo]
	return func(b *Batch, sel []int32) ([]int32, error) {
		col := &b.Cols[ix]
		out := sel[:0]
		switch {
		case col.Kind == ColInt && rhs.Kind == KFloat && op != sql.OpLike:
			rf := rhs.F
			for _, i := range sel {
				if col.IsNull(int(i)) {
					return nil, fmt.Errorf("exec: NULL comparison")
				}
				if opHolds(op, cmpF(float64(col.Ints[i]), rf)) {
					out = append(out, i)
				}
			}
		case col.Kind == ColFloat && rhs.Kind == KFloat && op != sql.OpLike:
			rf := rhs.F
			for _, i := range sel {
				if col.IsNull(int(i)) {
					return nil, fmt.Errorf("exec: NULL comparison")
				}
				if opHolds(op, cmpF(col.Floats[i], rf)) {
					out = append(out, i)
				}
			}
		case col.Kind == ColStr && rhs.Kind == KString && op == sql.OpLike:
			pat := rhs.S
			for _, i := range sel {
				if col.IsNull(int(i)) {
					return nil, fmt.Errorf("exec: LIKE over non-string")
				}
				if likeMatch(col.Strs[i], pat) {
					out = append(out, i)
				}
			}
		case col.Kind == ColStr && rhs.Kind == KString:
			rs := rhs.S
			for _, i := range sel {
				if col.IsNull(int(i)) {
					return nil, fmt.Errorf("exec: NULL comparison")
				}
				if opHolds(op, cmpS(col.Strs[i], rs)) {
					out = append(out, i)
				}
			}
		case col.Kind == ColDict && rhs.Kind == KString:
			// Resolve the constant against the dictionary once per dict:
			// verdict[code] answers the comparison (or LIKE match) for every
			// row carrying that code, so the row loop stays string-free.
			m := memo.Load()
			if m == nil || m.plainID != DictID(col.Dict) {
				v := make([]bool, len(col.Dict))
				if op == sql.OpLike {
					for e, s := range col.Dict {
						v[e] = likeMatch(s, rhs.S)
					}
				} else {
					for e, s := range col.Dict {
						v[e] = opHolds(op, cmpS(s, rhs.S))
					}
				}
				m = &dictAVMemo{plainID: DictID(col.Dict), verdict: v}
				memo.Store(m)
			}
			verdict := m.verdict
			if op == sql.OpLike {
				for _, i := range sel {
					if col.IsNull(int(i)) {
						return nil, fmt.Errorf("exec: LIKE over non-string")
					}
					if verdict[col.Codes[i]] {
						out = append(out, i)
					}
				}
			} else {
				for _, i := range sel {
					if col.IsNull(int(i)) {
						return nil, fmt.Errorf("exec: NULL comparison")
					}
					if verdict[col.Codes[i]] {
						out = append(out, i)
					}
				}
			}
		case col.Kind == ColCipherDict:
			// Mirror the ColCipherBytes guards exactly, then resolve the
			// encrypted constant against the cipher dictionary once.
			// CipherDict columns are built null-free (the dict encrypt fast
			// path skips nullable columns), so no per-row null checks.
			if !hasKonst {
				if len(sel) == 0 {
					return out, nil
				}
				return nil, fmt.Errorf("exec: no encrypted constant for condition %s (not dispatched?)", c)
			}
			if !konst.IsCipher() {
				if len(sel) == 0 {
					return out, nil
				}
				return nil, fmt.Errorf("exec: constant for %s is not encrypted", c)
			}
			switch col.Scheme {
			case algebra.SchemeDeterministic:
				if op != sql.OpEq && op != sql.OpNeq {
					if len(sel) == 0 {
						return out, nil
					}
					return nil, fmt.Errorf("exec: %s over deterministic ciphertext", op)
				}
			case algebra.SchemeOPE:
				// comparable below
			default:
				if len(sel) == 0 {
					return out, nil
				}
				return nil, fmt.Errorf("exec: cannot evaluate %s over %s ciphertext", op, col.Scheme)
			}
			m := memo.Load()
			if m == nil || m.cipherID != cipherDictID(col.CipherDict) {
				kd := konst.C.Data
				v := make([]bool, len(col.CipherDict))
				if col.Scheme == algebra.SchemeDeterministic {
					want := op == sql.OpEq
					for e, ct := range col.CipherDict {
						v[e] = crypto.Equal(ct, kd) == want
					}
				} else {
					for e, ct := range col.CipherDict {
						v[e] = opHolds(op, crypto.CompareOPE(ct, kd))
					}
				}
				m = &dictAVMemo{cipherID: cipherDictID(col.CipherDict), verdict: v}
				memo.Store(m)
			}
			verdict := m.verdict
			for _, i := range sel {
				if verdict[col.Codes[i]] {
					out = append(out, i)
				}
			}
		case col.Kind == ColCipherBytes:
			if !hasKonst {
				if len(sel) == 0 {
					return out, nil
				}
				return nil, fmt.Errorf("exec: no encrypted constant for condition %s (not dispatched?)", c)
			}
			if !konst.IsCipher() {
				if len(sel) == 0 {
					return out, nil
				}
				return nil, fmt.Errorf("exec: constant for %s is not encrypted", c)
			}
			switch col.Scheme {
			case algebra.SchemeDeterministic:
				if op != sql.OpEq && op != sql.OpNeq {
					if len(sel) == 0 {
						return out, nil
					}
					return nil, fmt.Errorf("exec: %s over deterministic ciphertext", op)
				}
				kd := konst.C.Data
				want := op == sql.OpEq
				for _, i := range sel {
					if crypto.Equal(col.Bytes[i], kd) == want {
						out = append(out, i)
					}
				}
			case algebra.SchemeOPE:
				kd := konst.C.Data
				for _, i := range sel {
					if opHolds(op, crypto.CompareOPE(col.Bytes[i], kd)) {
						out = append(out, i)
					}
				}
			default:
				if len(sel) == 0 {
					return out, nil
				}
				return nil, fmt.Errorf("exec: cannot evaluate %s over %s ciphertext", op, col.Scheme)
			}
		default:
			// Generic layout or kind/literal mismatch: per-cell fallback
			// with the row path's exact semantics.
			for _, i := range sel {
				ok, err := cell(col.Value(int(i)))
				if err != nil {
					return nil, err
				}
				if ok {
					out = append(out, i)
				}
			}
		}
		return out, nil
	}, nil
}

// compileColCmpAA compiles an attribute-vs-attribute comparison with typed
// fast paths when both columns are plaintext vectors or both are
// ciphertext-byte columns.
func (e *Executor) compileColCmpAA(c *algebra.CmpAA, r *schemaResolver) (colPred, error) {
	li, err := r.colFor(c.L, sql.AggNone)
	if err != nil {
		return nil, err
	}
	ri, err := r.colFor(c.R, sql.AggNone)
	if err != nil {
		return nil, err
	}
	op := c.Op
	cell := e.cellAA(c)
	return func(b *Batch, sel []int32) ([]int32, error) {
		lc, rc := &b.Cols[li], &b.Cols[ri]
		out := sel[:0]
		lPlain := lc.Kind == ColInt || lc.Kind == ColFloat || lc.Kind == ColStr || lc.Kind == ColDict
		rPlain := rc.Kind == ColInt || rc.Kind == ColFloat || rc.Kind == ColStr || rc.Kind == ColDict
		switch {
		case lc.Kind == ColInt && rc.Kind == ColInt:
			for _, i := range sel {
				if lc.IsNull(int(i)) || rc.IsNull(int(i)) {
					return nil, fmt.Errorf("exec: NULL comparison")
				}
				if opHolds(op, cmpI(lc.Ints[i], rc.Ints[i])) {
					out = append(out, i)
				}
			}
		case (lc.Kind == ColInt || lc.Kind == ColFloat) && (rc.Kind == ColInt || rc.Kind == ColFloat):
			for _, i := range sel {
				if lc.IsNull(int(i)) || rc.IsNull(int(i)) {
					return nil, fmt.Errorf("exec: NULL comparison")
				}
				var lf, rf float64
				if lc.Kind == ColInt {
					lf = float64(lc.Ints[i])
				} else {
					lf = lc.Floats[i]
				}
				if rc.Kind == ColInt {
					rf = float64(rc.Ints[i])
				} else {
					rf = rc.Floats[i]
				}
				if opHolds(op, cmpF(lf, rf)) {
					out = append(out, i)
				}
			}
		case lc.Kind == ColStr && rc.Kind == ColStr:
			for _, i := range sel {
				if lc.IsNull(int(i)) || rc.IsNull(int(i)) {
					return nil, fmt.Errorf("exec: NULL comparison")
				}
				if opHolds(op, cmpS(lc.Strs[i], rc.Strs[i])) {
					out = append(out, i)
				}
			}
		case lc.Kind == ColCipherBytes && rc.Kind == ColCipherBytes:
			if lc.Scheme != rc.Scheme {
				if len(sel) == 0 {
					return out, nil
				}
				return nil, fmt.Errorf("exec: comparing %s with %s ciphertexts", lc.Scheme, rc.Scheme)
			}
			switch lc.Scheme {
			case algebra.SchemeDeterministic:
				if op != sql.OpEq && op != sql.OpNeq {
					if len(sel) == 0 {
						return out, nil
					}
					return nil, fmt.Errorf("exec: %s over deterministic ciphertexts", op)
				}
				want := op == sql.OpEq
				for _, i := range sel {
					if crypto.Equal(lc.Bytes[i], rc.Bytes[i]) == want {
						out = append(out, i)
					}
				}
			case algebra.SchemeOPE:
				for _, i := range sel {
					if opHolds(op, crypto.CompareOPE(lc.Bytes[i], rc.Bytes[i])) {
						out = append(out, i)
					}
				}
			default:
				if len(sel) == 0 {
					return out, nil
				}
				return nil, fmt.Errorf("exec: cannot compare %s ciphertexts", lc.Scheme)
			}
		case lPlain != rPlain && (lc.Kind == ColCipherBytes || rc.Kind == ColCipherBytes ||
			lc.Kind == ColCipherDict || rc.Kind == ColCipherDict):
			if len(sel) == 0 {
				return out, nil
			}
			return nil, fmt.Errorf("exec: mixed plaintext/ciphertext comparison %s", c)
		default:
			for _, i := range sel {
				ok, err := cell(lc.Value(int(i)), rc.Value(int(i)))
				if err != nil {
					return nil, err
				}
				if ok {
					out = append(out, i)
				}
			}
		}
		return out, nil
	}, nil
}
