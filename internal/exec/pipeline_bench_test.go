package exec_test

import (
	"fmt"
	"testing"

	"mpq/internal/exec"
	"mpq/internal/planner"
	"mpq/internal/tpch"
)

// BenchmarkInterior compares the batch pipeline — single-threaded and
// morsel-parallel at 2 workers — against the legacy materializing evaluator
// on centralized plaintext TPC-H plans: the interior-only speedup, with no
// distribution, crypto, or link simulation in the way. (The workers=2 cells
// double as the CI smoke for the morsel pool; CPU-bound scaling is bounded
// by GOMAXPROCS.)
func BenchmarkInterior(b *testing.B) {
	const sf = 0.01
	cat := tpch.Catalog(sf)
	tables := tpch.Generate(sf, 99)
	pl := planner.New(cat)
	for _, num := range []int{1, 3, 6, 10} {
		var sqlText string
		for _, q := range tpch.Queries() {
			if q.Num == num {
				sqlText = q.SQL
			}
		}
		plan, err := pl.PlanSQL(sqlText)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			name    string
			mat     bool
			workers int
		}{{"materializing", true, 0}, {"batch", false, 0}, {"batch-w2", false, 2}} {
			b.Run(fmt.Sprintf("Q%02d/%s", num, mode.name), func(b *testing.B) {
				e := exec.NewExecutor()
				e.Materializing = mode.mat
				e.Workers = mode.workers
				for name, t := range tables {
					e.Tables[name] = t
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := e.RunPlan(plan); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
