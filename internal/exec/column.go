package exec

import (
	"encoding/binary"
	"fmt"
	"math"

	"mpq/internal/algebra"
)

// ColKind is the physical layout of one batch column.
type ColKind uint8

// Column layouts. The typed layouts (ColInt, ColFloat, ColStr) carry
// plaintext cells in monomorphic vectors with an optional null bitmap;
// ColCipherBytes carries the ciphertext payloads of a column whose cells all
// share one symmetric scheme and key (deterministic, randomized, or OPE), so
// predicate evaluation and batch decryption run over [][]byte without
// materializing a Cipher per cell. ColDict is a dictionary-encoded string
// column (per-cell uint32 codes into a deduplicated shared dictionary);
// ColCipherDict is its encrypted twin, whose dictionary holds one ciphertext
// per distinct plaintext. ColAny is the generic fallback: a []Value vector
// for mixed-kind columns, Paillier ciphertexts, and anything else.
const (
	ColAny ColKind = iota
	ColInt
	ColFloat
	ColStr
	ColCipherBytes
	ColDict
	ColCipherDict
)

// Column is one attribute's cells across a batch, stored column-major. The
// vector matching Kind is populated; the others are nil. Columns are
// immutable once published in a Batch: operators that rewrite cells
// (encryption, decryption) build replacement columns, so upstream columns
// may be shared across operators and batches with zero copies.
type Column struct {
	Kind ColKind

	Ints   []int64   // ColInt
	Floats []float64 // ColFloat
	Strs   []string  // ColStr

	// ColCipherBytes: the per-cell ciphertext payloads plus the scheme, key
	// id, and per-cell plaintext kinds shared metadata, exactly the fields a
	// Cipher would carry minus the per-cell allocation.
	Bytes  [][]byte
	Scheme algebra.Scheme
	KeyID  string
	Plains []Kind

	// ColDict / ColCipherDict: per-cell codes into a shared, deduplicated
	// dictionary. Codes is private to the column; Dict (plaintext entries)
	// and CipherDict (one ciphertext per distinct plaintext, with the shared
	// Scheme/KeyID above; every entry's plaintext kind is KString) are
	// immutable once published and shared across slices, gathers, batches,
	// and morsel workers. NULL cells carry dictNullCode in their slot.
	Codes      []uint32
	Dict       []string
	CipherDict [][]byte

	Vals []Value // ColAny

	// Nulls is a bitmap over the typed layouts: bit i set means cell i is
	// NULL and the typed vector's slot i is undefined. nil means no NULLs.
	// ColAny columns hold NULL cells inline as Value{Kind: KNull} instead.
	Nulls []uint64
}

// Len returns the column's cell count.
func (c *Column) Len() int {
	switch c.Kind {
	case ColInt:
		return len(c.Ints)
	case ColFloat:
		return len(c.Floats)
	case ColStr:
		return len(c.Strs)
	case ColCipherBytes:
		return len(c.Bytes)
	case ColDict, ColCipherDict:
		return len(c.Codes)
	default:
		return len(c.Vals)
	}
}

// IsNull reports whether cell i is NULL.
func (c *Column) IsNull(i int) bool {
	if c.Kind == ColAny {
		return c.Vals[i].Kind == KNull
	}
	return c.Nulls != nil && c.Nulls[i>>6]&(1<<(uint(i)&63)) != 0
}

// setNull marks cell i NULL, growing the bitmap on first use.
func (c *Column) setNull(i, n int) {
	if c.Nulls == nil {
		c.Nulls = make([]uint64, (n+63)/64)
	}
	c.Nulls[i>>6] |= 1 << (uint(i) & 63)
}

// hasNulls reports whether any cell is NULL (typed layouts only).
func (c *Column) hasNulls() bool {
	for _, w := range c.Nulls {
		if w != 0 {
			return true
		}
	}
	return false
}

// Value materializes cell i. For the typed layouts this is allocation-free;
// for ColCipherBytes it allocates one Cipher (boundary shims only — hot
// loops read the vectors directly).
func (c *Column) Value(i int) Value {
	if c.Kind != ColAny && c.IsNull(i) {
		return Null()
	}
	switch c.Kind {
	case ColInt:
		return Int(c.Ints[i])
	case ColFloat:
		return Float(c.Floats[i])
	case ColStr:
		return String(c.Strs[i])
	case ColCipherBytes:
		return Enc(&Cipher{Scheme: c.Scheme, KeyID: c.KeyID, Data: c.Bytes[i], Plain: c.Plains[i]})
	case ColDict:
		return String(c.Dict[c.Codes[i]])
	case ColCipherDict:
		return Enc(&Cipher{Scheme: c.Scheme, KeyID: c.KeyID, Data: c.CipherDict[c.Codes[i]], Plain: KString})
	default:
		return c.Vals[i]
	}
}

// AppendValues appends the column's cells to dst as materialized values.
func (c *Column) AppendValues(dst []Value) []Value {
	n := c.Len()
	for i := 0; i < n; i++ {
		dst = append(dst, c.Value(i))
	}
	return dst
}

// NewColumn builds the tightest column layout holding vals: a typed vector
// when every non-NULL cell shares one plaintext kind, a ciphertext-payload
// vector when every cell is a symmetric ciphertext under one scheme and key,
// and a generic []Value column otherwise. vals is never retained (the
// generic layout copies it), so callers may reuse the slice.
func NewColumn(vals []Value) Column {
	kind := detectColKind(vals)
	n := len(vals)
	col := Column{Kind: kind}
	switch kind {
	case ColInt:
		col.Ints = make([]int64, n)
		for i, v := range vals {
			if v.Kind == KNull {
				col.setNull(i, n)
				continue
			}
			col.Ints[i] = v.I
		}
	case ColFloat:
		col.Floats = make([]float64, n)
		for i, v := range vals {
			if v.Kind == KNull {
				col.setNull(i, n)
				continue
			}
			col.Floats[i] = v.F
		}
	case ColStr:
		col.Strs = make([]string, n)
		for i, v := range vals {
			if v.Kind == KNull {
				col.setNull(i, n)
				continue
			}
			col.Strs[i] = v.S
		}
	case ColCipherBytes:
		col.Bytes = make([][]byte, n)
		col.Plains = make([]Kind, n)
		col.Scheme = vals[0].C.Scheme
		col.KeyID = vals[0].C.KeyID
		for i, v := range vals {
			col.Bytes[i] = v.C.Data
			col.Plains[i] = v.C.Plain
		}
	default:
		col.Vals = append(make([]Value, 0, n), vals...)
	}
	return col
}

// detectColKind picks the layout for a cell vector: one pass, falling back
// to ColAny on the first cell that breaks the candidate layout.
func detectColKind(vals []Value) ColKind {
	kind := ColAny
	decided := false
	var first *Cipher
	for i := range vals {
		v := &vals[i]
		switch v.Kind {
		case KNull:
			// NULLs ride the typed bitmap but cannot appear in a cipher
			// column (a NULL cell is not a ciphertext).
			if kind == ColCipherBytes {
				return ColAny
			}
		case KInt:
			if !decided {
				kind, decided = ColInt, true
			} else if kind != ColInt {
				return ColAny
			}
		case KFloat:
			if !decided {
				kind, decided = ColFloat, true
			} else if kind != ColFloat {
				return ColAny
			}
		case KString:
			if !decided {
				kind, decided = ColStr, true
			} else if kind != ColStr {
				return ColAny
			}
		case KCipher:
			if v.C == nil || v.C.Data == nil {
				return ColAny // Paillier (group element, not bytes)
			}
			if !decided {
				kind, decided, first = ColCipherBytes, true, v.C
				// A cipher column cannot also carry earlier NULL cells.
				for j := 0; j < i; j++ {
					if vals[j].Kind == KNull {
						return ColAny
					}
				}
			} else if kind != ColCipherBytes {
				return ColAny
			}
			if v.C.Scheme != first.Scheme || v.C.KeyID != first.KeyID {
				return ColAny
			}
		default:
			return ColAny
		}
	}
	if !decided {
		// All NULL (or empty): a typed int column with a full bitmap would
		// work, but ColAny keeps the degenerate case simple.
		return ColAny
	}
	return kind
}

// slice returns the column's window [lo, hi) as a new column header sharing
// the receiver's cell storage: the zero-copy view scans and morsels serve.
// Only the null bitmap may need rebuilding — when lo is word-aligned the
// bitmap words are shared too, otherwise the window's bits are shifted into
// a fresh (hi-lo)-bit bitmap.
func (c *Column) slice(lo, hi int) Column {
	out := Column{Kind: c.Kind}
	switch c.Kind {
	case ColInt:
		out.Ints = c.Ints[lo:hi]
	case ColFloat:
		out.Floats = c.Floats[lo:hi]
	case ColStr:
		out.Strs = c.Strs[lo:hi]
	case ColCipherBytes:
		out.Bytes = c.Bytes[lo:hi]
		out.Plains = c.Plains[lo:hi]
		out.Scheme, out.KeyID = c.Scheme, c.KeyID
	case ColDict, ColCipherDict:
		out.Codes = c.Codes[lo:hi]
		out.Dict = c.Dict
		out.CipherDict = c.CipherDict
		out.Scheme, out.KeyID = c.Scheme, c.KeyID
	default:
		out.Vals = c.Vals[lo:hi]
	}
	if c.Nulls != nil {
		out.Nulls = sliceBitmap(c.Nulls, lo, hi)
	}
	return out
}

// sliceBitmap extracts bits [lo, hi) of a null bitmap. Word-aligned windows
// share the underlying words; unaligned ones are shifted into fresh storage.
func sliceBitmap(words []uint64, lo, hi int) []uint64 {
	n := hi - lo
	if n <= 0 {
		return nil
	}
	if lo&63 == 0 {
		return words[lo>>6 : (hi+63)>>6]
	}
	out := make([]uint64, (n+63)/64)
	s := uint(lo & 63)
	for i := range out {
		w := words[lo>>6+i] >> s
		if next := lo>>6 + i + 1; next < len(words) {
			w |= words[next] << (64 - s)
		}
		out[i] = w
	}
	return out
}

// gather returns a new column holding the cells of c at the selected
// indexes, in selection order: the typed counterpart of row copying after a
// filter.
func (c *Column) gather(sel []int32) Column {
	out := Column{Kind: c.Kind}
	n := len(sel)
	switch c.Kind {
	case ColInt:
		out.Ints = make([]int64, n)
		for o, i := range sel {
			out.Ints[o] = c.Ints[i]
		}
	case ColFloat:
		out.Floats = make([]float64, n)
		for o, i := range sel {
			out.Floats[o] = c.Floats[i]
		}
	case ColStr:
		out.Strs = make([]string, n)
		for o, i := range sel {
			out.Strs[o] = c.Strs[i]
		}
	case ColCipherBytes:
		out.Bytes = make([][]byte, n)
		out.Plains = make([]Kind, n)
		out.Scheme, out.KeyID = c.Scheme, c.KeyID
		for o, i := range sel {
			out.Bytes[o] = c.Bytes[i]
			out.Plains[o] = c.Plains[i]
		}
	case ColDict, ColCipherDict:
		out.Codes = make([]uint32, n)
		out.Dict = c.Dict
		out.CipherDict = c.CipherDict
		out.Scheme, out.KeyID = c.Scheme, c.KeyID
		for o, i := range sel {
			out.Codes[o] = c.Codes[i]
		}
	default:
		out.Vals = make([]Value, n)
		for o, i := range sel {
			out.Vals[o] = c.Vals[i]
		}
	}
	if c.Nulls != nil {
		for o, i := range sel {
			if c.IsNull(int(i)) {
				out.setNull(o, n)
			}
		}
	}
	return out
}

// appendCellKey appends cell i's canonical grouping key to buf, mirroring
// groupKey byte for byte (group-by and hash-join keys computed from columns
// must collide exactly with keys computed from materialized rows).
func appendCellKey(buf []byte, c *Column, i int) ([]byte, error) {
	if c.Kind != ColAny && c.IsNull(i) {
		return append(buf, '\x00'), nil
	}
	switch c.Kind {
	case ColInt:
		var b [9]byte
		b[0] = 1
		binary.BigEndian.PutUint64(b[1:], uint64(c.Ints[i]))
		return append(buf, b[:]...), nil
	case ColFloat:
		var b [9]byte
		b[0] = 2
		binary.BigEndian.PutUint64(b[1:], math.Float64bits(c.Floats[i]))
		return append(buf, b[:]...), nil
	case ColStr:
		buf = append(buf, 's')
		return append(buf, c.Strs[i]...), nil
	case ColCipherBytes:
		switch c.Scheme {
		case algebra.SchemeDeterministic, algebra.SchemeOPE:
			buf = append(buf, 'c')
			return append(buf, c.Bytes[i]...), nil
		default:
			return nil, fmt.Errorf("exec: cannot group/join on %s ciphertext", c.Scheme)
		}
	case ColDict:
		buf = append(buf, 's')
		return append(buf, c.Dict[c.Codes[i]]...), nil
	case ColCipherDict:
		switch c.Scheme {
		case algebra.SchemeDeterministic, algebra.SchemeOPE:
			buf = append(buf, 'c')
			return append(buf, c.CipherDict[c.Codes[i]]...), nil
		default:
			return nil, fmt.Errorf("exec: cannot group/join on %s ciphertext", c.Scheme)
		}
	default:
		k, err := groupKey(c.Vals[i])
		if err != nil {
			return nil, err
		}
		return append(buf, k...), nil
	}
}

// cellKey returns cell i's canonical grouping key as a string (the
// single-cell form hash joins probe with).
func cellKey(c *Column, i int) (string, error) {
	b, err := appendCellKey(nil, c, i)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
