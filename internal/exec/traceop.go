package exec

import (
	"time"

	"mpq/internal/algebra"
	"mpq/internal/obs"
)

// traceOp wraps a compiled operator with per-Next span accounting. It exists
// only in traced pipelines — Build inserts it when the executor carries a
// Trace — so the untraced hot path never pays for the time calls or the
// extra indirection.
//
// Span time is inclusive: a parent's Next encloses its children's Next
// calls, which are themselves wrapped, so self time is recoverable as
// span minus the sum of child spans (Engine.Explain does this).
type traceOp struct {
	inner Operator
	sp    *obs.Span
}

func (t *traceOp) Schema() []algebra.Attr { return t.inner.Schema() }

func (t *traceOp) Open() error {
	start := time.Now()
	err := t.inner.Open()
	t.sp.AddNanos(time.Since(start).Nanoseconds())
	return err
}

func (t *traceOp) Next() (*Batch, error) {
	start := time.Now()
	b, err := t.inner.Next()
	el := time.Since(start).Nanoseconds()
	if b != nil {
		t.sp.Record(b.N, el)
	} else {
		t.sp.Record(-1, el)
	}
	return b, err
}

func (t *traceOp) Close() error { return t.inner.Close() }
