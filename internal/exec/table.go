package exec

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mpq/internal/algebra"
)

// Table is an in-memory relation: a schema of qualified attributes and rows
// of values in schema order. Schemas may contain repeated attributes
// (multiple aggregates over one attribute); columns are positional.
//
// A table additionally carries a lazily built columnar representation
// (Columns): immutable column vectors every scan serves zero-copy windows
// of, so repeated queries over one relation pay the row→column transposition
// once instead of once per scan. The cache is guarded by a mutex (tables are
// shared by concurrent executor clones) and invalidated by Append; callers
// that mutate Rows in place must call InvalidateColumns themselves.
type Table struct {
	Schema []algebra.Attr
	Rows   [][]Value

	colMu   sync.Mutex
	cols    []Column
	colRows int // len(Rows) the cache was built at
}

// Columns returns the table's cached column-vector representation, building
// it on first use (and rebuilding it when rows were appended since). The
// returned columns are immutable and shared: callers must never write
// through them. A ragged row — one whose width does not match the schema —
// fails the build, exactly as it would fail a scan.
func (t *Table) Columns() ([]Column, error) {
	cols, _, err := t.snapshotColumns()
	return cols, err
}

// snapshotColumns returns the cached columns together with the row count
// they were built at. Scans must bound themselves by that count — never by
// the live len(Rows), which a concurrent Append may have grown past the
// vectors.
func (t *Table) snapshotColumns() ([]Column, int, error) {
	t.colMu.Lock()
	defer t.colMu.Unlock()
	if t.cols != nil && t.colRows == len(t.Rows) {
		return t.cols, t.colRows, nil
	}
	width := len(t.Schema)
	for _, r := range t.Rows {
		if len(r) != width {
			return nil, 0, fmt.Errorf("exec: scanned row width %d != schema width %d", len(r), width)
		}
	}
	rows := t.Rows
	cols := make([]Column, width)
	buf := make([]Value, len(rows))
	for ci := 0; ci < width; ci++ {
		for ri, r := range rows {
			buf[ri] = r[ci]
		}
		cols[ci] = maybeDictColumn(NewColumn(buf))
	}
	t.cols, t.colRows = cols, len(rows)
	return cols, len(rows), nil
}

// InvalidateColumns drops the cached columnar representation. Appends are
// detected automatically (the cache records the row count it was built at);
// callers that mutate Rows any other way — in-place cell rewrites, length-
// preserving slice surgery — must call it before the next scan.
func (t *Table) InvalidateColumns() {
	t.colMu.Lock()
	t.cols, t.colRows = nil, 0
	t.colMu.Unlock()
}

// NewTable returns an empty table with the given schema.
func NewTable(schema []algebra.Attr) *Table {
	return &Table{Schema: append([]algebra.Attr{}, schema...)}
}

// ColIndex returns the first column index of attribute a, or -1.
func (t *Table) ColIndex(a algebra.Attr) int {
	for i, s := range t.Schema {
		if s == a {
			return i
		}
	}
	return -1
}

// Append adds a row. A row whose width does not match the schema yields an
// error (it would corrupt every positional access downstream): a malformed
// plan or mis-shipped sub-result fails its query instead of panicking the
// serving process.
func (t *Table) Append(row []Value) error {
	if len(row) != len(t.Schema) {
		return fmt.Errorf("exec: row width %d != schema width %d", len(row), len(t.Schema))
	}
	t.Rows = append(t.Rows, row)
	// No InvalidateColumns needed: the cache records the row count it was
	// built at, so the next scan rebuilds it (appends never mutate the
	// rows the stale vectors cover).
	return nil
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// Project returns a new table with the given column indices.
func (t *Table) Project(indices []int) *Table {
	schema := make([]algebra.Attr, len(indices))
	for i, ix := range indices {
		schema[i] = t.Schema[ix]
	}
	out := NewTable(schema)
	for _, r := range t.Rows {
		row := make([]Value, len(indices))
		for i, ix := range indices {
			row[i] = r[ix]
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// SortBy sorts rows by the given (index, desc) specs, comparing plaintext
// values; ciphertext columns sort by OPE order when possible.
func (t *Table) SortBy(specs []SortSpec) error {
	var sortErr error
	sort.SliceStable(t.Rows, func(i, j int) bool {
		for _, sp := range specs {
			a, b := t.Rows[i][sp.Index], t.Rows[j][sp.Index]
			c, err := compareForSort(a, b)
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if sp.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	return sortErr
}

// SortSpec is one ordering criterion.
type SortSpec struct {
	Index int
	Desc  bool
}

func compareForSort(a, b Value) (int, error) {
	if a.Kind == KCipher && b.Kind == KCipher && a.C.Scheme == algebra.SchemeOPE && b.C.Scheme == algebra.SchemeOPE {
		return strings.Compare(string(a.C.Data), string(b.C.Data)), nil
	}
	if a.Kind == KNull && b.Kind == KNull {
		return 0, nil
	}
	if a.Kind == KNull {
		return -1, nil
	}
	if b.Kind == KNull {
		return 1, nil
	}
	return compare(a, b)
}

// Format renders the table as an aligned text grid with the given column
// headers (falling back to schema names).
func (t *Table) Format(headers []string) string {
	if headers == nil {
		headers = make([]string, len(t.Schema))
		for i, a := range t.Schema {
			headers[i] = a.String()
		}
	}
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	cells := make([][]string, len(t.Rows))
	for ri, r := range t.Rows {
		cells[ri] = make([]string, len(r))
		for ci, v := range r {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var sb strings.Builder
	for i, h := range headers {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], h)
	}
	sb.WriteString("\n")
	for i := range headers {
		sb.WriteString(strings.Repeat("-", widths[i]))
		sb.WriteString("  ")
	}
	sb.WriteString("\n")
	for _, row := range cells {
		for i, c := range row {
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
