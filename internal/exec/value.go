package exec

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/big"

	"mpq/internal/algebra"
	"mpq/internal/crypto"
)

// Kind is the runtime type of a value.
type Kind uint8

// Value kinds.
const (
	KNull Kind = iota
	KInt
	KFloat
	KString
	KCipher
)

// moneyScale converts floats to fixed-point integers for Paillier
// aggregation (four decimal digits).
const moneyScale = 10000

// Cipher is an encrypted value: symmetric/OPE ciphertext bytes or a
// Paillier group element, together with the scheme, the key identifier, and
// the plaintext kind needed for decoding.
type Cipher struct {
	Scheme algebra.Scheme
	KeyID  string
	Data   []byte   // det / rnd / ope ciphertext
	Phe    *big.Int // paillier ciphertext
	Div    int64    // paillier: divisor accumulated by avg (0 or 1 = none)
	Plain  Kind     // kind of the underlying plaintext
}

// Value is a runtime value: a tagged union of the supported kinds.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
	C    *Cipher
}

// Convenience constructors.
func Null() Value           { return Value{Kind: KNull} }
func Int(v int64) Value     { return Value{Kind: KInt, I: v} }
func Float(v float64) Value { return Value{Kind: KFloat, F: v} }
func String(v string) Value { return Value{Kind: KString, S: v} }
func Enc(c *Cipher) Value   { return Value{Kind: KCipher, C: c} }

// IsCipher reports whether the value is encrypted.
func (v Value) IsCipher() bool { return v.Kind == KCipher }

// String renders the value for display.
func (v Value) String() string {
	switch v.Kind {
	case KNull:
		return "NULL"
	case KInt:
		return fmt.Sprintf("%d", v.I)
	case KFloat:
		return fmt.Sprintf("%.4f", v.F)
	case KString:
		return v.S
	case KCipher:
		return fmt.Sprintf("⟨%s:%s⟩", v.C.Scheme, v.C.KeyID)
	}
	return "?"
}

// AsFloat converts a numeric value to float64.
func (v Value) AsFloat() (float64, error) {
	switch v.Kind {
	case KInt:
		return float64(v.I), nil
	case KFloat:
		return v.F, nil
	}
	return 0, fmt.Errorf("exec: value %v is not numeric", v)
}

// encodePlain serializes a plaintext value for symmetric encryption.
func encodePlain(v Value) ([]byte, error) {
	switch v.Kind {
	case KInt:
		buf := make([]byte, 9)
		buf[0] = byte(KInt)
		binary.BigEndian.PutUint64(buf[1:], uint64(v.I))
		return buf, nil
	case KFloat:
		buf := make([]byte, 9)
		buf[0] = byte(KFloat)
		binary.BigEndian.PutUint64(buf[1:], math.Float64bits(v.F))
		return buf, nil
	case KString:
		return append([]byte{byte(KString)}, v.S...), nil
	case KNull:
		return []byte{byte(KNull)}, nil
	}
	return nil, fmt.Errorf("exec: cannot encode %v", v)
}

// plainSize returns the encoded size of a plaintext value, so batch
// encryption can pre-size one arena for a whole column.
func plainSize(v Value) (int, error) {
	switch v.Kind {
	case KInt, KFloat:
		return 9, nil
	case KString:
		return 1 + len(v.S), nil
	case KNull:
		return 1, nil
	}
	return 0, fmt.Errorf("exec: cannot encode %v", v)
}

// writePlain writes the encodePlain encoding of v into buf, which must be
// exactly plainSize(v) bytes (an arena slot).
func writePlain(buf []byte, v Value) error {
	switch v.Kind {
	case KInt:
		buf[0] = byte(KInt)
		binary.BigEndian.PutUint64(buf[1:], uint64(v.I))
		return nil
	case KFloat:
		buf[0] = byte(KFloat)
		binary.BigEndian.PutUint64(buf[1:], math.Float64bits(v.F))
		return nil
	case KString:
		buf[0] = byte(KString)
		copy(buf[1:], v.S)
		return nil
	case KNull:
		buf[0] = byte(KNull)
		return nil
	}
	return fmt.Errorf("exec: cannot encode %v", v)
}

// decodePlain reverses encodePlain.
func decodePlain(b []byte) (Value, error) {
	if len(b) == 0 {
		return Value{}, fmt.Errorf("exec: empty plaintext encoding")
	}
	switch Kind(b[0]) {
	case KInt:
		if len(b) != 9 {
			return Value{}, fmt.Errorf("exec: bad int encoding")
		}
		return Int(int64(binary.BigEndian.Uint64(b[1:]))), nil
	case KFloat:
		if len(b) != 9 {
			return Value{}, fmt.Errorf("exec: bad float encoding")
		}
		return Float(math.Float64frombits(binary.BigEndian.Uint64(b[1:]))), nil
	case KString:
		return String(string(b[1:])), nil
	case KNull:
		return Null(), nil
	}
	return Value{}, fmt.Errorf("exec: unknown plaintext encoding tag %d", b[0])
}

// opeEncode maps a plaintext value to its order-preserving 64-bit encoding.
func opeEncode(v Value) (uint64, error) {
	switch v.Kind {
	case KInt:
		return crypto.EncodeInt(v.I), nil
	case KFloat:
		return crypto.EncodeFloat(v.F)
	}
	return 0, fmt.Errorf("exec: OPE over %v is unsupported (strings require plaintext)", v.Kind)
}

// opeDecode reverses opeEncode given the original kind.
func opeDecode(e uint64, plain Kind) (Value, error) {
	switch plain {
	case KInt:
		return Int(crypto.DecodeInt(e)), nil
	case KFloat:
		return Float(crypto.DecodeFloat(e)), nil
	}
	return Value{}, fmt.Errorf("exec: OPE decode of kind %d unsupported", plain)
}

// pheEncode maps a numeric value to the fixed-point integer Paillier
// operates on.
func pheEncode(v Value) (*big.Int, error) {
	switch v.Kind {
	case KInt:
		return new(big.Int).Mul(big.NewInt(v.I), big.NewInt(moneyScale)), nil
	case KFloat:
		return big.NewInt(int64(math.Round(v.F * moneyScale))), nil
	}
	return nil, fmt.Errorf("exec: Paillier over %v is unsupported", v.Kind)
}

// pheDecode reverses pheEncode, applying the accumulated divisor.
func pheDecode(m *big.Int, div int64, plain Kind) (Value, error) {
	f := new(big.Float).SetInt(m)
	f.Quo(f, big.NewFloat(moneyScale))
	if div > 1 {
		f.Quo(f, big.NewFloat(float64(div)))
	}
	out, _ := f.Float64()
	if plain == KInt && div <= 1 {
		return Int(int64(math.Round(out))), nil
	}
	return Float(out), nil
}

// compare orders two plaintext values of the same kind: -1, 0, +1.
func compare(a, b Value) (int, error) {
	if a.Kind == KNull || b.Kind == KNull {
		return 0, fmt.Errorf("exec: NULL comparison")
	}
	// Numeric cross-kind comparison.
	if (a.Kind == KInt || a.Kind == KFloat) && (b.Kind == KInt || b.Kind == KFloat) {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.Kind == KString && b.Kind == KString {
		switch {
		case a.S < b.S:
			return -1, nil
		case a.S > b.S:
			return 1, nil
		default:
			return 0, nil
		}
	}
	return 0, fmt.Errorf("exec: incomparable kinds %d and %d", a.Kind, b.Kind)
}

// groupKey returns a canonical string encoding of a value usable as a hash
// key: plaintext values by content, deterministic/OPE ciphertexts by their
// ciphertext bytes (equal plaintexts yield equal ciphertexts).
func groupKey(v Value) (string, error) {
	switch v.Kind {
	case KNull:
		return "\x00", nil
	case KInt:
		var buf [9]byte
		buf[0] = 1
		binary.BigEndian.PutUint64(buf[1:], uint64(v.I))
		return string(buf[:]), nil
	case KFloat:
		var buf [9]byte
		buf[0] = 2
		binary.BigEndian.PutUint64(buf[1:], math.Float64bits(v.F))
		return string(buf[:]), nil
	case KString:
		return "s" + v.S, nil
	case KCipher:
		switch v.C.Scheme {
		case algebra.SchemeDeterministic, algebra.SchemeOPE:
			return "c" + string(v.C.Data), nil
		default:
			return "", fmt.Errorf("exec: cannot group/join on %s ciphertext", v.C.Scheme)
		}
	}
	return "", fmt.Errorf("exec: cannot key kind %d", v.Kind)
}
