package exec

import (
	"math"
	"testing"

	"mpq/internal/algebra"
	"mpq/internal/authz"
	"mpq/internal/core"
	"mpq/internal/crypto"
	"mpq/internal/planner"
	"mpq/internal/sql"
)

const testPaillierBits = 128

func exampleCatalog() *algebra.Catalog {
	cat := algebra.NewCatalog()
	cat.Add(&algebra.Relation{Name: "Hosp", Authority: "H", Rows: 8, Columns: []algebra.Column{
		{Name: "S", Type: algebra.TString, Width: 11, Distinct: 8},
		{Name: "B", Type: algebra.TDate, Width: 8, Distinct: 8},
		{Name: "D", Type: algebra.TString, Width: 20, Distinct: 3},
		{Name: "T", Type: algebra.TString, Width: 20, Distinct: 3},
	}})
	cat.Add(&algebra.Relation{Name: "Ins", Authority: "I", Rows: 10, Columns: []algebra.Column{
		{Name: "C", Type: algebra.TString, Width: 11, Distinct: 10},
		{Name: "P", Type: algebra.TFloat, Width: 8, Distinct: 9},
	}})
	return cat
}

// exampleData loads the running-example tables: 8 patients, 10 customers.
func exampleData(e *Executor) {
	hosp := NewTable([]algebra.Attr{
		algebra.A("Hosp", "S"), algebra.A("Hosp", "B"), algebra.A("Hosp", "D"), algebra.A("Hosp", "T"),
	})
	rows := []struct {
		s    string
		b    int64
		d, t string
	}{
		{"s1", 10, "stroke", "surgery"},
		{"s2", 11, "stroke", "medication"},
		{"s3", 12, "flu", "medication"},
		{"s4", 13, "stroke", "surgery"},
		{"s5", 14, "asthma", "inhaler"},
		{"s6", 15, "stroke", "medication"},
		{"s7", 16, "flu", "rest"},
		{"s8", 17, "stroke", "therapy"},
	}
	for _, r := range rows {
		hosp.Append([]Value{String(r.s), Int(r.b), String(r.d), String(r.t)})
	}
	e.Tables["Hosp"] = hosp

	ins := NewTable([]algebra.Attr{algebra.A("Ins", "C"), algebra.A("Ins", "P")})
	prem := map[string]float64{
		"s1": 150, "s2": 90, "s3": 200, "s4": 250,
		"s5": 80, "s6": 130, "s7": 60, "s8": 40,
		"s9": 300, "s10": 20,
	}
	for c, p := range prem {
		ins.Append([]Value{String(c), Float(p)})
	}
	e.Tables["Ins"] = jsortIns(ins)
}

// jsortIns makes the map iteration deterministic for stable tests.
func jsortIns(t *Table) *Table {
	_ = t.SortBy([]SortSpec{{Index: 0}})
	return t
}

const runningQuery = "select T, avg(P) from Hosp join Ins on S=C where D='stroke' group by T having avg(P)>100"

// expected results for the running query over exampleData:
// stroke patients: s1(surgery,150) s2(medication,90) s4(surgery,250)
// s6(medication,130) s8(therapy,40)
// surgery: avg(150,250)=200 ✓>100; medication: avg(90,130)=110 ✓; therapy: 40 ✗.
var runningWant = map[string]float64{"surgery": 200, "medication": 110}

func checkRunningResult(t *testing.T, res *Table) {
	t.Helper()
	if len(res.Rows) != len(runningWant) {
		t.Fatalf("rows = %d, want %d\n%s", len(res.Rows), len(runningWant), res.Format(nil))
	}
	for _, row := range res.Rows {
		want, ok := runningWant[row[0].S]
		if !ok {
			t.Errorf("unexpected group %q", row[0].S)
			continue
		}
		got, err := row[1].AsFloat()
		if err != nil || math.Abs(got-want) > 1e-6 {
			t.Errorf("avg for %s = %v, want %v", row[0].S, row[1], want)
		}
	}
}

func TestPlaintextRunningExample(t *testing.T) {
	e := NewExecutor()
	exampleData(e)
	p, err := planner.New(exampleCatalog()).PlanSQL(runningQuery)
	if err != nil {
		t.Fatal(err)
	}
	res, headers, err := e.RunPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(headers) != 2 {
		t.Fatalf("headers = %v", headers)
	}
	checkRunningResult(t, res)
}

// TestEncryptedRunningExample executes the Figure 7(a) minimally extended
// plan with real encryption — deterministic join, Paillier average,
// encrypted selection constant — and checks the decrypted results match the
// plaintext run.
func TestEncryptedRunningExample(t *testing.T) {
	pol := authz.NewPolicy()
	pol.MustGrant("Hosp", "H", []string{"S", "B", "D", "T"}, nil)
	pol.MustGrant("Hosp", "U", []string{"S", "D", "T"}, nil)
	pol.MustGrant("Hosp", "X", []string{"D", "T"}, []string{"S"})
	pol.MustGrant("Hosp", "Y", []string{"B", "D", "T"}, []string{"S"})
	pol.MustGrant("Ins", "I", []string{"C", "P"}, nil)
	pol.MustGrant("Ins", "U", []string{"C", "P"}, nil)
	pol.MustGrant("Ins", "X", nil, []string{"C", "P"})
	pol.MustGrant("Ins", "Y", []string{"P"}, []string{"C"})
	sys := core.NewSystem(pol, "H", "I", "U", "X", "Y")

	plan, err := planner.New(exampleCatalog()).PlanSQL(runningQuery)
	if err != nil {
		t.Fatal(err)
	}
	an := sys.Analyze(plan.Root, nil)
	// Figure 7(a): selection at H, join and group-by at X, having at Y.
	var sel, join, grp, hav algebra.Node
	algebra.PostOrder(plan.Root, func(n algebra.Node) {
		switch x := n.(type) {
		case *algebra.Select:
			if _, isBase := x.Child.(*algebra.Base); isBase {
				sel = n
			} else {
				hav = n
			}
		case *algebra.Join:
			join = n
		case *algebra.GroupBy:
			grp = n
		}
	})
	lambda := core.Assignment{sel: "H", join: "X", grp: "X", hav: "Y"}
	ext, err := sys.Extend(an, lambda)
	if err != nil {
		t.Fatal(err)
	}

	e := NewExecutor()
	exampleData(e)
	for _, k := range ext.Keys {
		ring, err := crypto.NewKeyRing(k.ID, testPaillierBits)
		if err != nil {
			t.Fatal(err)
		}
		e.Keys.Add(ring)
	}
	consts, err := PrepareConstants(ext.Root, e.Keys, KindsFromCatalog(exampleCatalog()))
	if err != nil {
		t.Fatal(err)
	}
	e.Consts = consts

	// Execute the extended plan (encryption nodes run for real).
	extPlan := *plan
	extPlan.Root = ext.Root
	res, _, err := e.RunPlan(&extPlan)
	if err != nil {
		t.Fatal(err)
	}
	checkRunningResult(t, res)
}

func TestDeterministicJoinOverCiphertexts(t *testing.T) {
	e := NewExecutor()
	ring, _ := crypto.NewKeyRing("k1", testPaillierBits)
	e.Keys.Add(ring)

	la, lb := algebra.A("L", "a"), algebra.A("L", "b")
	ra := algebra.A("R", "a2")
	left := NewTable([]algebra.Attr{la, lb})
	right := NewTable([]algebra.Attr{ra})
	for i := 0; i < 5; i++ {
		left.Append([]Value{Int(int64(i)), Int(int64(i * 10))})
	}
	right.Append([]Value{Int(2)})
	right.Append([]Value{Int(4)})
	right.Append([]Value{Int(9)})
	e.Tables["L"] = left
	e.Tables["R"] = right

	bl := algebra.NewBase("L", "A1", []algebra.Attr{la, lb}, 5, nil)
	br := algebra.NewBase("R", "A2", []algebra.Attr{ra}, 3, nil)
	encL := algebra.NewEncrypt(bl, []algebra.Attr{la})
	encL.Schemes[la] = algebra.SchemeDeterministic
	encL.KeyIDs[la] = "k1"
	encR := algebra.NewEncrypt(br, []algebra.Attr{ra})
	encR.Schemes[ra] = algebra.SchemeDeterministic
	encR.KeyIDs[ra] = "k1"
	join := algebra.NewJoin(encL, encR, &algebra.CmpAA{L: la, Op: sql.OpEq, R: ra}, 0.1)

	res, err := e.Run(join)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("join rows = %d, want 2\n%s", len(res.Rows), res.Format(nil))
	}
	// The b column stays plaintext: values 20 and 40.
	got := map[int64]bool{}
	for _, row := range res.Rows {
		got[row[1].I] = true
	}
	if !got[20] || !got[40] {
		t.Errorf("joined b values = %v", got)
	}
}

func TestOPERangeSelectionWithDispatchedConstant(t *testing.T) {
	e := NewExecutor()
	ring, _ := crypto.NewKeyRing("k1", testPaillierBits)
	e.Keys.Add(ring)

	a := algebra.A("R", "v")
	tbl := NewTable([]algebra.Attr{a})
	for i := int64(0); i < 10; i++ {
		tbl.Append([]Value{Int(i)})
	}
	e.Tables["R"] = tbl

	base := algebra.NewBase("R", "A", []algebra.Attr{a}, 10, nil)
	enc := algebra.NewEncrypt(base, []algebra.Attr{a})
	enc.Schemes[a] = algebra.SchemeOPE
	enc.KeyIDs[a] = "k1"
	cmp := &algebra.CmpAV{A: a, Op: sql.OpGt, V: sql.NumberValue(6)}
	sel := algebra.NewSelect(enc, cmp, 0.3)

	kinds := AttrKinds{a: KInt}
	consts, err := PrepareConstants(sel, e.Keys, kinds)
	if err != nil {
		t.Fatal(err)
	}
	e.Consts = consts

	res, err := e.Run(sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (7,8,9)", len(res.Rows))
	}
	// Decrypting restores the plaintext values.
	dec := algebra.NewDecrypt(sel, []algebra.Attr{a})
	res2, err := e.Run(dec)
	if err != nil {
		t.Fatal(err)
	}
	sum := int64(0)
	for _, row := range res2.Rows {
		sum += row[0].I
	}
	if sum != 7+8+9 {
		t.Errorf("decrypted sum = %d", sum)
	}
}

func TestPaillierAggregation(t *testing.T) {
	e := NewExecutor()
	ring, _ := crypto.NewKeyRing("kP", testPaillierBits)
	e.Keys.Add(ring)

	g, v := algebra.A("R", "g"), algebra.A("R", "v")
	tbl := NewTable([]algebra.Attr{g, v})
	tbl.Append([]Value{String("a"), Float(1.5)})
	tbl.Append([]Value{String("a"), Float(2.5)})
	tbl.Append([]Value{String("b"), Float(10)})
	e.Tables["R"] = tbl

	base := algebra.NewBase("R", "A", []algebra.Attr{g, v}, 3, nil)
	enc := algebra.NewEncrypt(base, []algebra.Attr{v})
	enc.Schemes[v] = algebra.SchemePaillier
	enc.KeyIDs[v] = "kP"
	grp := algebra.NewGroupBy(base, []algebra.Attr{g}, []algebra.AggSpec{
		{Func: sql.AggSum, Attr: v}, {Func: sql.AggAvg, Attr: v}, {Func: sql.AggCount, Star: true},
	}, 2)
	grpEnc := algebra.Rebuild(grp, []algebra.Node{enc}).(*algebra.GroupBy)
	dec := algebra.NewDecrypt(grpEnc, []algebra.Attr{v})

	res, err := e.Run(dec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d\n%s", len(res.Rows), res.Format(nil))
	}
	for _, row := range res.Rows {
		sum, _ := row[1].AsFloat()
		avg, _ := row[2].AsFloat()
		cnt := row[3].I
		switch row[0].S {
		case "a":
			if math.Abs(sum-4) > 1e-6 || math.Abs(avg-2) > 1e-6 || cnt != 2 {
				t.Errorf("group a: sum=%v avg=%v count=%v", sum, avg, cnt)
			}
		case "b":
			if math.Abs(sum-10) > 1e-6 || math.Abs(avg-10) > 1e-6 || cnt != 1 {
				t.Errorf("group b: sum=%v avg=%v count=%v", sum, avg, cnt)
			}
		default:
			t.Errorf("unexpected group %q", row[0].S)
		}
	}
}

func TestGroupOnDeterministicCiphertext(t *testing.T) {
	e := NewExecutor()
	ring, _ := crypto.NewKeyRing("k1", testPaillierBits)
	e.Keys.Add(ring)

	g := algebra.A("R", "g")
	tbl := NewTable([]algebra.Attr{g})
	for _, s := range []string{"x", "y", "x", "x"} {
		tbl.Append([]Value{String(s)})
	}
	e.Tables["R"] = tbl
	base := algebra.NewBase("R", "A", []algebra.Attr{g}, 4, nil)
	enc := algebra.NewEncrypt(base, []algebra.Attr{g})
	enc.Schemes[g] = algebra.SchemeDeterministic
	enc.KeyIDs[g] = "k1"
	grp := algebra.NewGroupBy1(enc, []algebra.Attr{g}, sql.AggCount, algebra.Attr{}, true, 2)

	res, err := e.Run(grp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	counts := map[int64]bool{}
	for _, row := range res.Rows {
		counts[row[1].I] = true
	}
	if !counts[3] || !counts[1] {
		t.Errorf("counts = %v", counts)
	}
}

func TestProviderCannotDecrypt(t *testing.T) {
	owner := NewExecutor()
	full, _ := crypto.NewKeyRing("k1", testPaillierBits)
	owner.Keys.Add(full)

	provider := NewExecutor()
	provider.Keys.Add(full.Public())

	a := algebra.A("R", "v")
	tbl := NewTable([]algebra.Attr{a})
	tbl.Append([]Value{Int(7)})
	owner.Tables["R"] = tbl

	base := algebra.NewBase("R", "A", []algebra.Attr{a}, 1, nil)
	enc := algebra.NewEncrypt(base, []algebra.Attr{a})
	enc.Schemes[a] = algebra.SchemeDeterministic
	enc.KeyIDs[a] = "k1"
	ct, err := owner.Run(enc)
	if err != nil {
		t.Fatal(err)
	}
	// The provider can hash-join/group on the ciphertext but cannot decrypt.
	provider.Tables["R"] = ct
	if _, err := provider.DecryptValue(ct.Rows[0][0].C); err == nil {
		t.Errorf("public-only provider decrypted a deterministic ciphertext")
	}
	// The owner can.
	if v, err := owner.DecryptValue(ct.Rows[0][0].C); err != nil || v.I != 7 {
		t.Errorf("owner decrypt = %v, %v", v, err)
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h_l", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%b%", true},
		{"abc", "%d%", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.s, c.p, got)
		}
	}
}

func TestOrderByAndLimit(t *testing.T) {
	e := NewExecutor()
	exampleData(e)
	p, err := planner.New(exampleCatalog()).PlanSQL(
		"select S, P from Hosp join Ins on S = C order by P desc limit 3")
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := e.RunPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	prev := math.Inf(1)
	for _, row := range res.Rows {
		f, _ := row[1].AsFloat()
		if f > prev {
			t.Errorf("not descending: %v after %v", f, prev)
		}
		prev = f
	}
}

func TestSelectVariants(t *testing.T) {
	e := NewExecutor()
	exampleData(e)
	pl := planner.New(exampleCatalog())
	for _, tc := range []struct {
		q    string
		rows int
	}{
		{"select S from Hosp where D = 'stroke'", 5},
		{"select S from Hosp where D <> 'stroke'", 3},
		{"select S from Hosp where D = 'stroke' and T = 'surgery'", 2},
		{"select S from Hosp where D = 'flu' or D = 'asthma'", 3},
		{"select S from Hosp where not D = 'stroke'", 3},
		{"select S from Hosp where B between 12 and 14", 3},
		{"select S from Hosp where D like 'str%'", 5},
		{"select C from Ins where P >= 200", 3},
		{"select count(*) as n from Hosp", 1},
		{"select D, count(*) as n from Hosp group by D", 3},
		{"select D, min(B), max(B) from Hosp group by D", 3},
	} {
		p, err := pl.PlanSQL(tc.q)
		if err != nil {
			t.Fatalf("%s: %v", tc.q, err)
		}
		res, _, err := e.RunPlan(p)
		if err != nil {
			t.Fatalf("%s: %v", tc.q, err)
		}
		if len(res.Rows) != tc.rows {
			t.Errorf("%s: rows = %d, want %d", tc.q, len(res.Rows), tc.rows)
		}
	}
}

func TestUDFExecution(t *testing.T) {
	e := NewExecutor()
	exampleData(e)
	e.UDFs["risk"] = func(args []Value) (Value, error) {
		b, _ := args[0].AsFloat()
		if args[1].S == "stroke" {
			return Float(b * 2), nil
		}
		return Float(b), nil
	}
	p, err := planner.New(exampleCatalog()).PlanSQL("select risk(B, D) as r from Hosp where T = 'surgery'")
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := e.RunPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		f, _ := row[0].AsFloat()
		if f != 20 && f != 26 {
			t.Errorf("risk = %v", f)
		}
	}
}

func TestRandomizedRoundTripThroughPlan(t *testing.T) {
	e := NewExecutor()
	ring, _ := crypto.NewKeyRing("k1", testPaillierBits)
	e.Keys.Add(ring)
	a := algebra.A("R", "v")
	tbl := NewTable([]algebra.Attr{a})
	tbl.Append([]Value{String("secret")})
	e.Tables["R"] = tbl
	base := algebra.NewBase("R", "A", []algebra.Attr{a}, 1, nil)
	enc := algebra.NewEncrypt(base, []algebra.Attr{a})
	enc.Schemes[a] = algebra.SchemeRandom
	enc.KeyIDs[a] = "k1"
	dec := algebra.NewDecrypt(enc, []algebra.Attr{a})
	res, err := e.Run(dec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].S != "secret" {
		t.Errorf("round trip = %v", res.Rows[0][0])
	}
}

func TestExecErrors(t *testing.T) {
	e := NewExecutor()
	a := algebra.A("R", "v")
	base := algebra.NewBase("R", "A", []algebra.Attr{a}, 1, nil)
	if _, err := e.Run(base); err == nil {
		t.Errorf("missing table not reported")
	}
	tbl := NewTable([]algebra.Attr{a})
	tbl.Append([]Value{Int(1)})
	e.Tables["R"] = tbl
	// Encrypt without the key.
	enc := algebra.NewEncrypt(base, []algebra.Attr{a})
	enc.Schemes[a] = algebra.SchemeDeterministic
	enc.KeyIDs[a] = "missing"
	if _, err := e.Run(enc); err == nil {
		t.Errorf("missing key not reported")
	}
	// Selection on an encrypted column without a dispatched constant.
	ring, _ := crypto.NewKeyRing("k1", testPaillierBits)
	e.Keys.Add(ring)
	enc.KeyIDs[a] = "k1"
	sel := algebra.NewSelect(enc, &algebra.CmpAV{A: a, Op: sql.OpEq, V: sql.NumberValue(1)}, 0.5)
	if _, err := e.Run(sel); err == nil {
		t.Errorf("missing dispatched constant not reported")
	}
	// UDF not registered.
	udf := algebra.NewUDF(base, "nope", []algebra.Attr{a}, a)
	if _, err := e.Run(udf); err == nil {
		t.Errorf("unregistered udf not reported")
	}
}

func TestValueHelpers(t *testing.T) {
	if Int(5).String() != "5" || String("x").String() != "x" || Null().String() != "NULL" {
		t.Errorf("value rendering broken")
	}
	if _, err := Null().AsFloat(); err == nil {
		t.Errorf("AsFloat(NULL) should fail")
	}
	for _, v := range []Value{Int(-3), Float(2.75), String("abc"), Null()} {
		b, err := encodePlain(v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodePlain(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != v.Kind || got.I != v.I || got.F != v.F || got.S != v.S {
			t.Errorf("encode/decode mismatch: %v vs %v", got, v)
		}
	}
	if _, err := decodePlain(nil); err == nil {
		t.Errorf("empty decode should fail")
	}
	if _, err := decodePlain([]byte{99}); err == nil {
		t.Errorf("bad tag decode should fail")
	}
}

func TestTableFormat(t *testing.T) {
	a := algebra.A("R", "v")
	tbl := NewTable([]algebra.Attr{a})
	tbl.Append([]Value{Int(42)})
	out := tbl.Format([]string{"value"})
	if out == "" || len(out) < 10 {
		t.Errorf("format = %q", out)
	}
	out2 := tbl.Format(nil)
	if out2 == "" {
		t.Errorf("format with schema headers failed")
	}
}
