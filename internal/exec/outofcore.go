package exec

import (
	"context"
	"fmt"
	"math/big"

	"mpq/internal/algebra"
	"mpq/internal/sql"
)

// Out-of-core execution: grace-hash spilling for the two pipeline breakers
// (group-by tables and hash-join build sides) plus pre-shuffle partial
// aggregation. The shape is classical grace hashing adapted to the columnar
// runtime: when a memory reservation fails, live state is hash-partitioned
// by the canonical cell key (appendCellKey — the same bytes grouping and
// join probing already hash on) into spill runs of serialized batches, and
// each partition is re-processed recursively on read-back with the hash
// salted per level so a skewed partition re-splits differently.

const (
	// spillPartitions is the fanout of one spill pass. 32 partitions divide
	// the overflow working set enough that one extra pass covers ~32x the
	// budget, while keeping at most 32 open run writers per frozen breaker.
	spillPartitions = 32

	// maxSpillDepth caps recursive re-partitioning. A partition still over
	// budget at the cap (a single giant key, or a budget below one group's
	// footprint) is processed unbudgeted rather than erroring: the query
	// degrades to the in-memory footprint of that partition only.
	maxSpillDepth = 6
)

// spillPartition routes a canonical cell key to a partition. FNV-1a with the
// offset basis salted by level, so each recursion level distributes the same
// keys independently — a partition that came from one hash bucket at level k
// still splits 32 ways at level k+1.
func spillPartition(key []byte, level int) int {
	h := uint64(14695981039346656037) ^ (uint64(level+1) * 0x9E3779B97F4A7C15)
	for _, c := range key {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return int(h % spillPartitions)
}

// groupCost estimates the resident footprint of one new group: map entry and
// key string, pinned key values, and one accumulator per aggregate.
func groupCost(hkLen, nkeys, naggs int) int64 {
	return int64(96 + 2*hkLen + nkeys*48 + naggs*112)
}

// batchMemBytes estimates the resident footprint of a retained batch, per
// column layout. Dictionary payloads are charged per batch even though
// batches often share one dictionary, keeping the estimate conservative.
func batchMemBytes(b *Batch) int64 {
	var total int64
	for ci := range b.Cols {
		c := &b.Cols[ci]
		switch c.Kind {
		case ColInt, ColFloat:
			total += int64(8 * b.N)
		case ColStr:
			for _, s := range c.Strs {
				total += int64(16 + len(s))
			}
		case ColCipherBytes:
			for _, p := range c.Bytes {
				total += int64(25 + len(p))
			}
		case ColDict:
			total += int64(4 * b.N)
			for _, s := range c.Dict {
				total += int64(16 + len(s))
			}
		case ColCipherDict:
			total += int64(4 * b.N)
			for _, p := range c.CipherDict {
				total += int64(24 + len(p))
			}
		default:
			total += int64(48 * b.N)
			for i := range c.Vals {
				v := &c.Vals[i]
				if v.Kind == KString {
					total += int64(len(v.S))
				}
				if v.C != nil {
					total += int64(64 + len(v.C.Data))
				}
			}
		}
		total += int64(len(c.Nulls) * 8)
	}
	return total
}

// releaseRuns releases every non-nil run in rs, ignoring cleanup errors.
func releaseRuns(rs []SpillRun) {
	for _, r := range rs {
		if r != nil {
			r.Release()
		}
	}
}

// ---------------------------------------------------------------------------
// Group-by spilling

// freeze seals the resident group set after the first failed reservation:
// resident groups keep folding their rows, rows of unseen keys route to
// spill partitions from here on.
func (gt *groupTable) freeze() {
	gt.frozen = true
	gt.parts = make([]SpillRun, spillPartitions)
	gt.partSel = make([][]int32, spillPartitions)
	addSpillEvent()
}

// route records row ri for its spill partition. Only valid right after
// groupFor returned (nil, nil): gt.keyBuf still holds the row's canonical
// group key, which decides the partition.
func (gt *groupTable) route(ri int) {
	p := spillPartition(gt.keyBuf, gt.level)
	gt.partSel[p] = append(gt.partSel[p], int32(ri))
}

// flushRouted appends the rows routed from batch b to their partitions'
// runs, creating runs lazily (a partition nothing hashed into costs no
// file). Called once per ingested batch, so each partition receives at most
// one gathered sub-batch per input batch.
func (gt *groupTable) flushRouted(b *Batch) error {
	if !gt.frozen {
		return nil
	}
	for p, sel := range gt.partSel {
		if len(sel) == 0 {
			continue
		}
		if gt.parts[p] == nil {
			run, err := gt.spill.NewRun()
			if err != nil {
				return err
			}
			gt.parts[p] = run
			addSpillPartition()
		}
		if err := gt.parts[p].Append(b.Gather(sel)); err != nil {
			return err
		}
		gt.partSel[p] = sel[:0]
	}
	return nil
}

// releaseMem returns the table's group reservations to the accountant.
func (gt *groupTable) releaseMem() {
	if gt.mem != nil && gt.reserved > 0 {
		gt.mem.Release(gt.reserved)
		gt.reserved = 0
	}
}

// discard releases the table's reservations and spill runs; the error-path
// counterpart of emitGroups.
func (gt *groupTable) discard() {
	gt.releaseMem()
	releaseRuns(gt.parts)
	gt.parts = nil
}

// emitGroups streams gt's groups to emit: the resident groups first, in
// first-seen order, then each spill partition re-aggregated recursively
// (partition 0..P-1, recursively in the same order). Without spilling this
// is exactly the first-seen order of the sequential build; with spilling the
// output order relaxes to per-partition order, but every group is still the
// row-order fold of its rows, so float accumulation stays bit-identical per
// group. All reservations and runs are released, on success and on error.
func emitGroups(gt *groupTable, emit func(*group) error) error {
	for _, hk := range gt.order {
		if err := emit(gt.groups[hk]); err != nil {
			gt.discard()
			return err
		}
	}
	gt.groups, gt.order, gt.codeGroups = nil, nil, nil
	gt.releaseMem()
	parts := gt.parts
	gt.parts = nil
	for pi, run := range parts {
		if run == nil {
			continue
		}
		parts[pi] = nil
		if err := emitPartitionGroups(gt, run, emit); err != nil {
			releaseRuns(parts[pi+1:])
			return err
		}
	}
	return nil
}

// emitPartitionGroups re-aggregates one spill partition: its batches replay
// through a fresh groupTable inheriting the parent's shape (and, below the
// depth cap, its budget one level deeper, so an oversized partition spills
// again with a re-salted hash). The run is always released.
func emitPartitionGroups(gt *groupTable, run SpillRun, emit func(*group) error) error {
	defer run.Release()
	if err := run.Finish(); err != nil {
		return err
	}
	rd, err := run.Open()
	if err != nil {
		return err
	}
	sub := newGroupTable(gt.keyIdx, gt.aggIdx, gt.specs, gt.gather, gt.ring)
	sub.mergePartials = gt.mergePartials
	sub.ctx = gt.ctx
	if gt.mem != nil && gt.level+1 < maxSpillDepth {
		sub.mem, sub.spill, sub.level = gt.mem, gt.spill, gt.level+1
	}
	for {
		if err := ctxErr(gt.ctx); err != nil {
			rd.Close()
			sub.discard()
			return err
		}
		b, err := rd.Next()
		if err != nil {
			rd.Close()
			sub.discard()
			return err
		}
		if b == nil {
			break
		}
		if err := sub.ingest(b); err != nil {
			rd.Close()
			sub.discard()
			return err
		}
	}
	if err := rd.Close(); err != nil {
		sub.discard()
		return err
	}
	return emitGroups(sub, emit)
}

// ---------------------------------------------------------------------------
// Pre-shuffle partial aggregation

// partialRel marks the synthetic attributes of a partial-aggregated shuffle
// edge's wire schema.
const partialRel = "§partial"

// ShufflePartialSchema is the wire schema of a partial-aggregated shuffle
// edge: the group-by keys followed by one (count, payload) column pair per
// aggregate. COUNT ships a NULL payload (the count column carries it), SUM
// and AVG ship the partial sum (plaintext float or Paillier cipher), MIN and
// MAX ship the partial extreme.
func ShufflePartialSchema(g *algebra.GroupBy) []algebra.Attr {
	out := make([]algebra.Attr, 0, len(g.Keys)+2*len(g.Aggs))
	out = append(out, g.Keys...)
	for i := range g.Aggs {
		out = append(out,
			algebra.Attr{Rel: partialRel, Name: fmt.Sprintf("count%d", i)},
			algebra.Attr{Rel: partialRel, Name: fmt.Sprintf("agg%d", i)})
	}
	return out
}

// partial freezes the accumulator into its shuffle form: the row count it
// folded plus the payload the consumer resumes from.
func (acc *groupAcc) partial() (int64, Value, error) {
	if acc.byteMode {
		acc.materializeMinMax()
	}
	switch acc.fn {
	case sql.AggCount:
		return acc.count, Null(), nil
	case sql.AggSum, sql.AggAvg:
		if acc.phe != nil {
			return acc.count, Enc(&Cipher{Scheme: algebra.SchemePaillier, KeyID: acc.pheC.KeyID,
				Phe: acc.phe, Div: 1, Plain: acc.pheC.Plain}), nil
		}
		return acc.count, Float(acc.sum), nil
	case sql.AggMin:
		return acc.count, acc.min, nil
	case sql.AggMax:
		return acc.count, acc.max, nil
	}
	return 0, Value{}, fmt.Errorf("exec: unknown aggregate %q", acc.fn)
}

// absorb folds one shipped partial into the accumulator: counts add, partial
// sums add (Paillier partials add homomorphically), partial extremes compare
// under the same strict rule as row-order adds. The inverse of partial.
func (acc *groupAcc) absorb(count int64, payload Value, ring ringFn) error {
	if count == 0 {
		return nil
	}
	first := acc.count == 0
	acc.count += count
	switch acc.fn {
	case sql.AggCount:
		return nil
	case sql.AggSum, sql.AggAvg:
		if payload.IsCipher() {
			if payload.C.Scheme != algebra.SchemePaillier {
				return fmt.Errorf("exec: %s partial over %s ciphertext", acc.fn, payload.C.Scheme)
			}
			if acc.phe == nil {
				acc.phe = new(big.Int).Set(payload.C.Phe)
				acc.pheC = payload.C
				return nil
			}
			r, err := ring(payload.C.KeyID)
			if err != nil {
				return err
			}
			r.PK.AddTo(acc.phe, payload.C.Phe)
			return nil
		}
		f, err := payload.AsFloat()
		if err != nil {
			return err
		}
		acc.sum += f
		return nil
	case sql.AggMin, sql.AggMax:
		if first {
			acc.min, acc.max = payload, payload
			return nil
		}
		if acc.byteMode {
			acc.materializeMinMax()
		}
		c, err := compareForSort(payload, acc.min)
		if err != nil {
			return err
		}
		if c < 0 {
			acc.min = payload
		}
		c, err = compareForSort(payload, acc.max)
		if err != nil {
			return err
		}
		if c > 0 {
			acc.max = payload
		}
		return nil
	}
	return fmt.Errorf("exec: unknown aggregate %q", acc.fn)
}

// addPartialBatch ingests a batch of shipped partial rows (ShufflePartialSchema
// layout): group keys in the leading columns, then one (count, payload) pair
// per aggregate, folded in via absorb. Spilling works unchanged — routed
// rows are partial rows, and the recursion inherits mergePartials.
func (gt *groupTable) addPartialBatch(b *Batch) error {
	nk := len(gt.keyIdx)
	var err error
	for ri := 0; ri < b.N; ri++ {
		gt.keyBuf = gt.keyBuf[:0]
		for k := 0; k < nk; k++ {
			gt.keyBuf, err = appendCellKey(gt.keyBuf, &b.Cols[k], ri)
			if err != nil {
				return err
			}
			gt.keyBuf = append(gt.keyBuf, '\x1f')
		}
		grp, err := gt.groupFor(string(gt.keyBuf), b, ri)
		if err != nil {
			return err
		}
		if grp == nil {
			gt.route(ri)
			continue
		}
		for i := range gt.specs {
			count := b.Cols[nk+2*i].Value(ri)
			payload := b.Cols[nk+2*i+1].Value(ri)
			if err := grp.accs[i].absorb(count.I, payload, gt.ring); err != nil {
				return err
			}
		}
	}
	return gt.flushRouted(b)
}

// partialAggOp is the producer half of pre-shuffle partial aggregation: it
// drains its child, folds every aggregate per group exactly as the final
// group-by would, and emits one partial row per group instead of the raw
// rows. The consumer's group-by (ingesting under mergePartials) resumes from
// these partials; with a single producer folding in row order the merged
// result is bit-identical to the unshuffled fold.
type partialAggOp struct {
	child  Operator
	e      *Executor
	schema []algebra.Attr
	keyIdx []int
	specs  []algebra.AggSpec
	aggIdx []int
	batch  int
	ring   ringFn

	built bool
	out   [][]Value
	pos   int
}

// NewShuffleSelect compiles s's predicate against child's schema and wraps
// child in the filter: the producer-side evaluation of a consumer selection
// sitting between a shuffle edge and the group-by it feeds. Filters commute
// with the shuffle — the producer evaluates the same compiled predicate
// (shared constant cache, ciphertext comparisons need no key material) over
// rows it already holds, so the downstream partial fold sees exactly the
// rows the consumer's filter would have passed.
func NewShuffleSelect(e *Executor, s *algebra.Select, child Operator) (Operator, error) {
	pred, err := e.compileColPred(s.Pred, resolverFor(child.Schema(), s.Child))
	if err != nil {
		return nil, err
	}
	return &filterOp{child: child, pred: pred}, nil
}

// NewShufflePartial wraps child (the producer-side pipeline beneath a
// shuffle edge feeding g) with a partial aggregation stage emitting
// ShufflePartialSchema(g) rows. Key and aggregate attributes resolve against
// the child schema exactly as the consumer group-by would resolve them.
func NewShufflePartial(e *Executor, g *algebra.GroupBy, child Operator) (Operator, error) {
	in := child.Schema()
	keyIdx := make([]int, len(g.Keys))
	for i, k := range g.Keys {
		ix := schemaIndex(in, k)
		if ix < 0 {
			return nil, fmt.Errorf("exec: shuffle partial: group key %s not in input", k)
		}
		keyIdx[i] = ix
	}
	aggIdx := make([]int, len(g.Aggs))
	for i, sp := range g.Aggs {
		if sp.Star {
			aggIdx[i] = -1
			continue
		}
		ix := schemaIndex(in, sp.Attr)
		if ix < 0 {
			return nil, fmt.Errorf("exec: shuffle partial: aggregate attribute %s not in input", sp.Attr)
		}
		aggIdx[i] = ix
	}
	return &partialAggOp{
		child: child, e: e, schema: ShufflePartialSchema(g),
		keyIdx: keyIdx, aggIdx: aggIdx, specs: g.Aggs,
		batch: e.batchSize(), ring: e.ringCache(),
	}, nil
}

func (p *partialAggOp) Schema() []algebra.Attr { return p.schema }

func (p *partialAggOp) Open() error {
	p.built, p.out, p.pos = false, nil, 0
	return p.child.Open()
}

func (p *partialAggOp) Close() error { return p.child.Close() }

func (p *partialAggOp) build() error {
	gt := newGroupTable(p.keyIdx, p.aggIdx, p.specs, false, p.ring)
	if p.e != nil && p.e.Mem != nil {
		gt.mem, gt.spill = p.e.Mem, p.e.Spill
	}
	if p.e != nil {
		gt.ctx = p.e.Ctx
	}
	for {
		b, err := p.child.Next()
		if err != nil {
			gt.discard()
			return err
		}
		if b == nil {
			break
		}
		if err := gt.addBatch(b); err != nil {
			gt.discard()
			return err
		}
	}
	p.out = make([][]Value, 0, len(gt.order))
	return emitGroups(gt, func(grp *group) error {
		row := make([]Value, 0, len(grp.keyVals)+2*len(p.specs))
		row = append(row, grp.keyVals...)
		for i := range p.specs {
			count, payload, err := grp.accs[i].partial()
			if err != nil {
				return err
			}
			row = append(row, Int(count), payload)
		}
		p.out = append(p.out, row)
		return nil
	})
}

func (p *partialAggOp) Next() (*Batch, error) {
	if !p.built {
		if err := p.build(); err != nil {
			return nil, err
		}
		p.built = true
	}
	if p.pos >= len(p.out) {
		return nil, nil
	}
	end := p.pos + p.batch
	if end > len(p.out) {
		end = len(p.out)
	}
	window := p.out[p.pos:end]
	p.pos = end
	return NewBatchFromRows(window, len(p.schema))
}

// ---------------------------------------------------------------------------
// Hash-join grace spilling

// joinPartitioner hash-routes batches into spill partitions by one key
// column's canonical cell key, creating runs lazily.
type joinPartitioner struct {
	spill  SpillFactory
	keyCol int
	level  int
	parts  []SpillRun
	sel    [][]int32
	keyBuf []byte
}

func newJoinPartitioner(spill SpillFactory, keyCol, level int) *joinPartitioner {
	return &joinPartitioner{
		spill: spill, keyCol: keyCol, level: level,
		parts: make([]SpillRun, spillPartitions),
		sel:   make([][]int32, spillPartitions),
	}
}

func (jp *joinPartitioner) add(b *Batch) error {
	col := &b.Cols[jp.keyCol]
	var err error
	for ri := 0; ri < b.N; ri++ {
		jp.keyBuf, err = appendCellKey(jp.keyBuf[:0], col, ri)
		if err != nil {
			return err
		}
		p := spillPartition(jp.keyBuf, jp.level)
		jp.sel[p] = append(jp.sel[p], int32(ri))
	}
	for p, sel := range jp.sel {
		if len(sel) == 0 {
			continue
		}
		if jp.parts[p] == nil {
			run, err := jp.spill.NewRun()
			if err != nil {
				return err
			}
			jp.parts[p] = run
			addSpillPartition()
		}
		if err := jp.parts[p].Append(b.Gather(sel)); err != nil {
			return err
		}
		jp.sel[p] = sel[:0]
	}
	return nil
}

func (jp *joinPartitioner) discard() {
	releaseRuns(jp.parts)
	jp.parts = nil
}

// spilledBuild is the partitioned form of a hash-join build side that did
// not fit its budget.
type spilledBuild struct {
	parts []SpillRun
	level int
}

// buildJoinIndexMem is buildJoinIndex under a memory budget: retained
// batches reserve their estimated footprint (plus ref overhead), and the
// first failed reservation flips the build into partition mode — already
// retained batches are re-routed to spill runs, the reservation is
// returned, and the rest of the build stream partitions straight to disk.
// Exactly one of idx and spilled is non-nil on success; reserved is the
// reservation backing idx, released by the caller when done probing.
func buildJoinIndexMem(right Operator, hashR int, mem *MemAccountant, fac SpillFactory) (idx *joinIndex, spilled *spilledBuild, reserved int64, err error) {
	idx = &joinIndex{schema: right.Schema(), refs: make(map[string][]buildRef)}
	if err := right.Open(); err != nil {
		right.Close()
		return nil, nil, 0, err
	}
	var keyBuf []byte
	var jp *joinPartitioner
	fail := func(e error) (*joinIndex, *spilledBuild, int64, error) {
		right.Close()
		mem.Release(reserved)
		if jp != nil {
			jp.discard()
		}
		return nil, nil, 0, e
	}
	for {
		b, err := right.Next()
		if err != nil {
			return fail(err)
		}
		if b == nil {
			break
		}
		if jp == nil {
			cost := batchMemBytes(b) + 32*int64(b.N)
			if mem.Reserve(cost) {
				reserved += cost
				bi := int32(len(idx.batches))
				idx.batches = append(idx.batches, b)
				col := &b.Cols[hashR]
				for ri := 0; ri < b.N; ri++ {
					keyBuf, err = appendCellKey(keyBuf[:0], col, ri)
					if err != nil {
						return fail(err)
					}
					idx.refs[string(keyBuf)] = append(idx.refs[string(keyBuf)], buildRef{bi, int32(ri)})
				}
				continue
			}
			if fac == nil {
				return fail(fmt.Errorf("exec: memory budget exhausted (%d of %d bytes) and no spill factory configured",
					mem.Used(), mem.Budget()))
			}
			addSpillEvent()
			jp = newJoinPartitioner(fac, hashR, 0)
			for _, rb := range idx.batches {
				if err := jp.add(rb); err != nil {
					return fail(err)
				}
			}
			idx.batches, idx.refs = nil, nil
			mem.Release(reserved)
			reserved = 0
		}
		if err := jp.add(b); err != nil {
			return fail(err)
		}
	}
	if err := right.Close(); err != nil {
		mem.Release(reserved)
		if jp != nil {
			jp.discard()
		}
		return nil, nil, 0, err
	}
	if jp != nil {
		return nil, &spilledBuild{parts: jp.parts, level: 0}, 0, nil
	}
	idx.uniform = make([]ColKind, len(idx.schema))
	for ci := range idx.uniform {
		idx.uniform[ci] = uniformKind(idx.batches, ci)
	}
	return idx, nil, reserved, nil
}

// buildRunIndex builds an in-memory joinIndex from one spilled build
// partition. Below the depth cap each batch reserves its footprint; a
// failed reservation aborts cleanly and reports refit=true so the caller
// re-partitions one level deeper (the run stays intact on disk and can be
// re-read). At the cap the partition builds unbudgeted — the skew fallback
// for a single giant key.
func buildRunIndex(ctx context.Context, run SpillRun, schema []algebra.Attr, hashR int, mem *MemAccountant, level int) (idx *joinIndex, reserved int64, refit bool, err error) {
	if err := run.Finish(); err != nil {
		return nil, 0, false, err
	}
	rd, err := run.Open()
	if err != nil {
		return nil, 0, false, err
	}
	idx = &joinIndex{schema: schema, refs: make(map[string][]buildRef)}
	unbudgeted := level+1 >= maxSpillDepth
	var keyBuf []byte
	for {
		if err := ctxErr(ctx); err != nil {
			rd.Close()
			mem.Release(reserved)
			return nil, 0, false, err
		}
		b, err := rd.Next()
		if err != nil {
			rd.Close()
			mem.Release(reserved)
			return nil, 0, false, err
		}
		if b == nil {
			break
		}
		if !unbudgeted {
			cost := batchMemBytes(b) + 32*int64(b.N)
			if !mem.Reserve(cost) {
				rd.Close()
				mem.Release(reserved)
				return nil, 0, true, nil
			}
			reserved += cost
		}
		bi := int32(len(idx.batches))
		idx.batches = append(idx.batches, b)
		col := &b.Cols[hashR]
		for ri := 0; ri < b.N; ri++ {
			keyBuf, err = appendCellKey(keyBuf[:0], col, ri)
			if err != nil {
				rd.Close()
				mem.Release(reserved)
				return nil, 0, false, err
			}
			idx.refs[string(keyBuf)] = append(idx.refs[string(keyBuf)], buildRef{bi, int32(ri)})
		}
	}
	if err := rd.Close(); err != nil {
		mem.Release(reserved)
		return nil, 0, false, err
	}
	idx.uniform = make([]ColKind, len(idx.schema))
	for ci := range idx.uniform {
		idx.uniform[ci] = uniformKind(idx.batches, ci)
	}
	return idx, reserved, false, nil
}

// repartitionRun splits one run's batches into spillPartitions fresh runs by
// the key column's hash at the given level, then releases the source run.
func repartitionRun(ctx context.Context, run SpillRun, keyCol, level int, fac SpillFactory) ([]SpillRun, error) {
	defer run.Release()
	if err := run.Finish(); err != nil {
		return nil, err
	}
	rd, err := run.Open()
	if err != nil {
		return nil, err
	}
	jp := newJoinPartitioner(fac, keyCol, level)
	for {
		if err := ctxErr(ctx); err != nil {
			rd.Close()
			jp.discard()
			return nil, err
		}
		b, err := rd.Next()
		if err != nil {
			rd.Close()
			jp.discard()
			return nil, err
		}
		if b == nil {
			break
		}
		if err := jp.add(b); err != nil {
			rd.Close()
			jp.discard()
			return nil, err
		}
	}
	if err := rd.Close(); err != nil {
		jp.discard()
		return nil, err
	}
	return jp.parts, nil
}

// zipPairs pairs build and probe partitions positionally. A partition with
// no build rows joins to nothing (its probe run is released unread) and one
// with no probe rows produces nothing (its build run is released unread).
func zipPairs(build, probe []SpillRun, level int) []gracePair {
	var pairs []gracePair
	for p := range build {
		bp, pp := build[p], probe[p]
		switch {
		case bp == nil && pp == nil:
		case bp == nil:
			pp.Release()
		case pp == nil:
			bp.Release()
		default:
			pairs = append(pairs, gracePair{build: bp, probe: pp, level: level})
		}
	}
	return pairs
}

// gracePair is one co-partitioned (build, probe) run pair awaiting its
// in-memory join pass.
type gracePair struct {
	build, probe SpillRun
	level        int
}

// graceJoin drives the partitioned phase of a budgeted hash join: the pair
// worklist, the inner in-memory join streaming the current pair, and the
// reservation backing its index. Matching keys always share a partition
// (both sides hash the same canonical key bytes at the same level), so
// joining pairs independently produces exactly the unpartitioned matches,
// in partition-major order.
type graceJoin struct {
	j           *hashJoinOp
	probeSchema []algebra.Attr
	buildSchema []algebra.Attr
	pairs       []gracePair
	cur         *hashJoinOp
	curReserved int64
}

// openBudgeted is hashJoinOp.Open's build phase under a memory budget: the
// build side is indexed under reservation, and if it spills the probe side
// is co-partitioned and the join switches to grace mode.
func (j *hashJoinOp) openBudgeted() error {
	idx, spilled, reserved, err := buildJoinIndexMem(j.right, j.hashR, j.mem, j.spillFac)
	if err != nil {
		return err
	}
	if spilled == nil {
		j.idx, j.idxReserved = idx, reserved
		return nil
	}
	g := &graceJoin{j: j, probeSchema: j.left.Schema(), buildSchema: j.right.Schema()}
	jp := newJoinPartitioner(j.spillFac, j.hashL, spilled.level)
	for {
		b, err := j.left.Next()
		if err != nil {
			jp.discard()
			releaseRuns(spilled.parts)
			return err
		}
		if b == nil {
			break
		}
		if err := jp.add(b); err != nil {
			jp.discard()
			releaseRuns(spilled.parts)
			return err
		}
	}
	g.pairs = zipPairs(spilled.parts, jp.parts, spilled.level)
	j.grace = g
	return nil
}

// next streams the grace join: batches of the current pair's inner join,
// advancing through the worklist as pairs drain. A pair whose build
// partition still exceeds the budget is split one level deeper and its
// sub-pairs prepended, preserving partition order.
func (g *graceJoin) next() (*Batch, error) {
	for {
		if g.cur != nil {
			b, err := g.cur.Next()
			if err != nil {
				return nil, err
			}
			if b != nil {
				return b, nil
			}
			if err := g.closePair(); err != nil {
				return nil, err
			}
		}
		if len(g.pairs) == 0 {
			return nil, nil
		}
		pair := g.pairs[0]
		g.pairs = g.pairs[1:]
		if err := g.openPair(pair); err != nil {
			return nil, err
		}
	}
}

func (g *graceJoin) openPair(pair gracePair) error {
	j := g.j
	idx, reserved, refit, err := buildRunIndex(j.ctx, pair.build, g.buildSchema, j.hashR, j.mem, pair.level)
	if err != nil {
		pair.probe.Release()
		return err
	}
	if refit {
		buildParts, err := repartitionRun(j.ctx, pair.build, j.hashR, pair.level+1, j.spillFac)
		if err != nil {
			pair.probe.Release()
			return err
		}
		probeParts, err := repartitionRun(j.ctx, pair.probe, j.hashL, pair.level+1, j.spillFac)
		if err != nil {
			releaseRuns(buildParts)
			return err
		}
		g.pairs = append(zipPairs(buildParts, probeParts, pair.level+1), g.pairs...)
		return nil
	}
	pair.build.Release()
	probe := newSpillScan(g.probeSchema, pair.probe)
	probe.ctx = j.ctx
	inner := &hashJoinOp{
		left:   probe,
		schema: j.schema, hashL: j.hashL, hashR: j.hashR,
		residual: j.residual, batch: j.batch, leftWidth: j.leftWidth,
		idx: idx, shared: true, ctx: j.ctx,
	}
	if err := inner.Open(); err != nil {
		j.mem.Release(reserved)
		return err
	}
	g.cur, g.curReserved = inner, reserved
	return nil
}

// closePair closes the drained inner join (releasing its probe run) and
// returns its index reservation.
func (g *graceJoin) closePair() error {
	err := g.cur.Close()
	g.cur = nil
	g.j.mem.Release(g.curReserved)
	g.curReserved = 0
	return err
}

// discard releases everything the grace join still holds; safe after errors
// and on early Close.
func (g *graceJoin) discard() {
	if g.cur != nil {
		g.cur.Close()
		g.cur = nil
	}
	g.j.mem.Release(g.curReserved)
	g.curReserved = 0
	for _, p := range g.pairs {
		p.build.Release()
		p.probe.Release()
	}
	g.pairs = nil
}

// spillScan streams a spill run as an operator: the probe side of a grace
// pair's inner join. Close releases the run.
type spillScan struct {
	schema []algebra.Attr
	run    SpillRun
	rd     SpillReader
	ctx    context.Context // run cancellation, probed per batch
}

func newSpillScan(schema []algebra.Attr, run SpillRun) *spillScan {
	return &spillScan{schema: schema, run: run}
}

func (s *spillScan) Schema() []algebra.Attr { return s.schema }

func (s *spillScan) Open() error {
	if err := s.run.Finish(); err != nil {
		return err
	}
	rd, err := s.run.Open()
	if err != nil {
		return err
	}
	s.rd = rd
	return nil
}

func (s *spillScan) Next() (*Batch, error) {
	if err := ctxErr(s.ctx); err != nil {
		return nil, err
	}
	if s.rd == nil {
		return nil, nil
	}
	return s.rd.Next()
}

func (s *spillScan) Close() error {
	var err error
	if s.rd != nil {
		err = s.rd.Close()
		s.rd = nil
	}
	if rerr := s.run.Release(); err == nil {
		err = rerr
	}
	return err
}
