package exec

import (
	"math/rand"
	"testing"

	"mpq/internal/algebra"
)

// TestTopKMatchesStableSort cross-checks the bounded heap against the
// reference it replaces — stable sort then truncate — over random multisets
// with heavy ties (the stability-sensitive case) and multi-key orderings.
func TestTopKMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	specs := []SortSpec{{Index: 0, Desc: false}, {Index: 1, Desc: true}}
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		k := rng.Intn(30)
		rows := make([][]Value, n)
		for i := range rows {
			// Few distinct keys force ties; the payload column identifies
			// each row so stability violations are visible.
			rows[i] = []Value{Int(int64(rng.Intn(5))), Float(float64(rng.Intn(3))), Int(int64(i))}
		}

		want := NewTable([]algebra.Attr{algebra.A("R", "a"), algebra.A("R", "b"), algebra.A("R", "id")})
		want.Rows = append(want.Rows, rows...)
		if err := want.SortBy(specs); err != nil {
			t.Fatal(err)
		}
		if len(want.Rows) > k {
			want.Rows = want.Rows[:k]
		}

		tk := NewTopK(specs, k)
		for _, r := range rows {
			if err := tk.Add(r); err != nil {
				t.Fatal(err)
			}
		}
		got, err := tk.Rows()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want.Rows) {
			t.Fatalf("trial %d (n=%d k=%d): %d rows, want %d", trial, n, k, len(got), len(want.Rows))
		}
		for i := range got {
			if DisplayString(got[i]) != DisplayString(want.Rows[i]) {
				t.Fatalf("trial %d (n=%d k=%d) row %d:\ngot:  %s\nwant: %s",
					trial, n, k, i, DisplayString(got[i]), DisplayString(want.Rows[i]))
			}
		}
	}
}

// TestTopKErrors: incomparable rows must surface the comparison error, and
// a zero limit collects nothing.
func TestTopKErrors(t *testing.T) {
	specs := []SortSpec{{Index: 0}}
	tk := NewTopK(specs, 5)
	if err := tk.Add([]Value{Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tk.Add([]Value{String("x")}); err == nil {
		t.Fatal("incomparable rows accepted")
	}
	if _, err := tk.Rows(); err == nil {
		t.Fatal("Rows after comparison error did not fail")
	}

	zero := NewTopK(specs, 0)
	for i := 0; i < 10; i++ {
		if err := zero.Add([]Value{Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := zero.Rows()
	if err != nil || len(rows) != 0 {
		t.Fatalf("limit 0: rows=%d err=%v", len(rows), err)
	}
}
