// Package exec is the in-memory relational execution engine for (extended)
// query plans. It evaluates every operator of the algebra, including the
// encryption and decryption operators and computation over encrypted
// values: equality and grouping over deterministic ciphertexts, range
// conditions and min/max over OPE ciphertexts, and sum/avg over Paillier
// ciphertexts via additive homomorphism — the CryptDB/SEEED-style substrate
// the paper's model assumes (Section 1).
//
// Two evaluators share the operator semantics:
//
//   - The columnar batch pipeline (the default): Executor.Build compiles a
//     plan into Open/Next/Close operators exchanging Batch values — N rows
//     stored as typed column vectors (int64, float64, string, ciphertext
//     bytes, plus a generic Value fallback and a null bitmap). Scans serve
//     zero-copy windows of each table's cached columnar store
//     (Table.Columns, built once per relation), filters narrow selection
//     vectors over the vectors, projections forward column slices without
//     copying, aggregation accumulates from the typed vectors, and the
//     encrypt/decrypt operators hand whole columns to the batched crypto
//     engine. Row-oriented callers convert only at the boundary (Drain,
//     Batch.Rows). With Executor.Workers > 1, table-anchored pipeline
//     segments execute morsel-parallel — fixed row-ranges on a worker pool,
//     merged in morsel order — with results row-for-row identical to
//     single-threaded execution (see docs/ARCHITECTURE.md, "Morsel-driven
//     parallelism").
//
//   - The legacy row-at-a-time materializing evaluator (Executor.Run with
//     Materializing set): every operator materializes its full result and
//     resolves references per row. It is retained as the equivalence
//     oracle and benchmark baseline, never as a hot path.
//
// See docs/ARCHITECTURE.md at the repository root for the batch contract,
// the operator inventory, and a worked end-to-end query trace.
package exec
