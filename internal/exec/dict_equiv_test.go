package exec_test

import (
	"testing"

	"mpq/internal/exec"
	"mpq/internal/planner"
	"mpq/internal/tpch"
)

// TestDictForcedMatchesOracleTPCH runs the 22-query TPC-H workload with
// dictionary promotion forced onto every string column — predicates resolve
// constants against dictionaries, group-by and join keys ride on codes, and
// projections forward codes zero-copy — and diffs every result row for row
// against the row-at-a-time materializing oracle (which never sees a dict
// column). Workers 1/2/8 make the shared-dictionary read paths a data-race
// check under -race; the dict-off pass proves the policy switch itself
// changes nothing.
func TestDictForcedMatchesOracleTPCH(t *testing.T) {
	const sf = 0.001
	cat := tpch.Catalog(sf)
	tables := tpch.Generate(sf, 99)
	pl := planner.New(cat)

	oracle := exec.NewExecutor()
	oracle.Materializing = true
	for name, tbl := range tables {
		oracle.Tables[name] = tbl
	}
	type planned struct {
		num  int
		plan *planner.Plan
		want *exec.Table
	}
	var qs []planned
	for _, q := range tpch.Queries() {
		plan, err := pl.PlanSQL(q.SQL)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := oracle.RunPlan(plan)
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, planned{num: q.Num, plan: plan, want: want})
	}

	for _, pol := range []struct {
		name   string
		policy exec.DictPolicy
	}{
		{"dict-on", exec.DictPolicy{MinRows: 1, MaxRatio: 1}},
		{"dict-off", exec.DictPolicy{MinRows: 1, MaxRatio: 0}},
	} {
		old := exec.SetDictPolicy(pol.policy)
		for _, workers := range []int{1, 2, 8} {
			e := exec.NewExecutor()
			e.Workers = workers
			e.MorselRows = 64
			for name, tbl := range tables {
				// Fresh tables per policy: the columnar cache snapshots under
				// the policy active at build time.
				e.Tables[name] = tbl
				tbl.InvalidateColumns()
			}
			for _, q := range qs {
				got, _, err := e.RunPlan(q.plan)
				if err != nil {
					t.Fatalf("%s workers=%d Q%d: %v", pol.name, workers, q.num, err)
				}
				if got.Len() != q.want.Len() {
					t.Fatalf("%s workers=%d Q%d: %d rows, want %d", pol.name, workers, q.num, got.Len(), q.want.Len())
				}
				for i := range q.want.Rows {
					g, w := exec.DisplayString(got.Rows[i]), exec.DisplayString(q.want.Rows[i])
					if g != w {
						t.Fatalf("%s workers=%d Q%d row %d differs:\ngot:  %s\nwant: %s", pol.name, workers, q.num, i, g, w)
					}
				}
			}
		}
		exec.SetDictPolicy(old)
	}
}
