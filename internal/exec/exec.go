package exec

import (
	"context"
	"fmt"
	"math/big"
	"time"

	"mpq/internal/algebra"
	"mpq/internal/crypto"
	"mpq/internal/obs"
	"mpq/internal/sql"
)

// UDFFunc is a registered user defined function: it receives the argument
// values of one tuple and returns the output value.
type UDFFunc func(args []Value) (Value, error)

// Executor evaluates (extended) query plans over in-memory tables with the
// key material available to one subject. A provider executing over
// encrypted data holds public-only key rings and pre-encrypted predicate
// constants; it never sees plaintext.
type Executor struct {
	Tables map[string]*Table
	Keys   *crypto.KeyStore
	UDFs   map[string]UDFFunc
	// Consts holds predicate literals pre-encrypted by the dispatching
	// subject for conditions evaluated over ciphertexts (Section 6: the
	// condition "will have to be dispatched formulated on encrypted
	// values").
	Consts ConstCache
	// Materialized maps plan nodes to pre-computed relations: when Run
	// reaches such a node it returns the table directly instead of
	// recursing. The distributed simulator uses this to feed a subject the
	// sub-results received from other subjects.
	Materialized map[algebra.Node]*Table
	// Sources maps plan nodes to already-built operators: when Build
	// reaches such a node it splices the operator into the pipeline
	// instead of compiling the subtree. The streaming distributed runtime
	// uses this to feed a fragment the batches arriving from other
	// subjects without materializing them first.
	Sources map[algebra.Node]Operator
	// BatchSize is the number of rows per pipeline batch (0 means
	// DefaultBatchSize).
	BatchSize int
	// Materializing selects the legacy row-at-a-time, whole-table
	// evaluator instead of the batch pipeline. It is kept as the reference
	// oracle for equivalence tests and as the benchmark baseline.
	Materializing bool
	// CryptoWorkers sizes the intra-batch worker pool of the encrypt and
	// decrypt operators: 0 means GOMAXPROCS, negative disables the pool.
	// Small batches never fan out regardless.
	CryptoWorkers int
	// ValueCrypto forces the batch pipeline's encrypt/decrypt operators
	// onto the per-value crypto path (EncryptValue/DecryptValue per cell):
	// the equivalence oracle and benchmark baseline for the batched crypto
	// engine.
	ValueCrypto bool
	// Workers sizes the morsel worker pool: when > 1, pipeline segments
	// anchored at a table scan (scan, filter, project, UDF, encrypt,
	// decrypt, hash-join probe) execute fixed row-ranges of the cached
	// column vectors concurrently, and group-by builds merge per-morsel
	// partial aggregation tables in morsel order — results stay row-for-row
	// identical to single-threaded execution. 0 or 1 runs single-threaded.
	// UDFs must be safe for concurrent calls when Workers > 1.
	Workers int
	// MorselRows is the fixed morsel length in rows (0 means
	// DefaultMorselRows). Morsel boundaries depend only on this value and
	// the table, never on Workers, so parallel results are deterministic.
	MorselRows int
	// Mem, when non-nil, is the per-query memory accountant pipeline
	// breakers (group-by tables, hash-join build sides) reserve live state
	// against. A failed reservation switches the operator to grace-hash
	// spilling through Spill. The accountant is shared — not copied — by
	// Clone, so one budget governs every fragment of a run. With a budget
	// set, pipeline breakers run sequentially (morsel-parallel chains that
	// only stream — scan/filter/project/crypto — still fan out).
	Mem *MemAccountant
	// Spill creates the on-disk partition runs out-of-core operators write.
	// nil with a budget set is a configuration error surfaced at the first
	// failed reservation.
	Spill SpillFactory
	// AdaptiveBatch starts table scans at a small batch and grows the
	// window geometrically up to BatchSize: first rows reach the client
	// after a fraction of a full batch's work, while steady-state
	// throughput still amortizes per-batch overhead at full width.
	AdaptiveBatch bool
	// Partials marks group-by nodes whose input arrives as pre-aggregated
	// partial rows from a producing fragment (pre-shuffle partial
	// aggregation): Build compiles those group-bys in merge mode instead of
	// raw-row mode. The streaming distributed runtime populates it on the
	// consumer clone; it is per-run state, so Clone starts empty.
	Partials map[*algebra.GroupBy]bool
	// Trace, when non-nil, makes Build wrap every compiled operator in a
	// per-Next accounting shim recording rows, batches, and wall time into
	// one span per plan node. The wrapping decision happens at build time,
	// so a nil Trace leaves the compiled pipeline — and its per-batch cost
	// — completely untouched (enforced by BenchmarkTraceOverhead).
	Trace *obs.Trace
	// Ctx, when non-nil, is the run's cancellation context. Leaf scans,
	// spill read-back loops, and the materializing evaluator probe it at
	// batch boundaries, so a cancelled run stops within one batch of work.
	// nil (the default) costs a single pointer comparison per batch.
	Ctx context.Context
	// Faults arms the fault-injection harness: Build wraps every compiled
	// operator in a shim firing the configured errors, panics, and delays
	// at batch boundaries. nil (the default) leaves the pipeline untouched.
	Faults *FaultPoints
}

// ConstCache maps value-comparison conditions to their encrypted literals.
type ConstCache map[*algebra.CmpAV]Value

// NewExecutor returns an executor with empty tables, keys, and udfs.
func NewExecutor() *Executor {
	return &Executor{
		Tables: make(map[string]*Table),
		Keys:   crypto.NewKeyStore(),
		UDFs:   make(map[string]UDFFunc),
		Consts: make(ConstCache),
	}
}

// Clone returns an executor sharing the receiver's durable state — tables
// and key material, which Run never mutates — with fresh per-execution
// state (dispatched constants, materialized sub-results) and a private copy
// of the UDF registry (the distributed simulator merges network-wide UDFs
// into it per run). Concurrent plan executions each run on their own clone
// of a subject's long-lived executor, so evaluation never races on shared
// maps.
func (e *Executor) Clone() *Executor {
	udfs := make(map[string]UDFFunc, len(e.UDFs))
	for name, fn := range e.UDFs {
		udfs[name] = fn
	}
	return &Executor{
		Tables:        e.Tables,
		Keys:          e.Keys,
		UDFs:          udfs,
		Consts:        make(ConstCache),
		Materialized:  make(map[algebra.Node]*Table),
		BatchSize:     e.BatchSize,
		Materializing: e.Materializing,
		CryptoWorkers: e.CryptoWorkers,
		ValueCrypto:   e.ValueCrypto,
		Workers:       e.Workers,
		MorselRows:    e.MorselRows,
		Mem:           e.Mem,
		Spill:         e.Spill,
		AdaptiveBatch: e.AdaptiveBatch,
		Trace:         e.Trace,
		Ctx:           e.Ctx,
		Faults:        e.Faults,
	}
}

// Run evaluates the plan rooted at n and returns the produced relation. The
// default path compiles the plan into the batch pipeline (Build) and drains
// it; with Materializing set it falls back to the legacy row-at-a-time
// recursive evaluator, kept as the reference oracle.
func (e *Executor) Run(n algebra.Node) (*Table, error) {
	if e.Materializing {
		return e.runMaterializing(n)
	}
	if t, ok := e.Materialized[n]; ok {
		return t, nil
	}
	op, err := e.Build(n)
	if err != nil {
		return nil, err
	}
	return Drain(op)
}

// runMaterializing evaluates the plan by the legacy whole-table recursion:
// every operator materializes its full result before the parent consumes
// it, and predicate references are resolved per row. With a Trace attached
// each node still gets a span — rows and inclusive wall time accounted per
// materialized result (one batch), so Explain works under the oracle
// runtime too.
func (e *Executor) runMaterializing(n algebra.Node) (*Table, error) {
	if err := ctxErr(e.Ctx); err != nil {
		return nil, err
	}
	if t, ok := e.Materialized[n]; ok {
		return t, nil
	}
	if e.Trace == nil {
		return e.evalMaterializing(n)
	}
	start := time.Now()
	t, err := e.evalMaterializing(n)
	if err != nil {
		return nil, err
	}
	sp := e.Trace.Span(n, n.Op(), "")
	sp.AddRows(int64(t.Len()), 1)
	sp.AddNanos(time.Since(start).Nanoseconds())
	return t, nil
}

func (e *Executor) evalMaterializing(n algebra.Node) (*Table, error) {
	switch x := n.(type) {
	case *algebra.Base:
		return e.runBase(x)
	case *algebra.Project:
		return e.runProject(x)
	case *algebra.Select:
		return e.runSelect(x)
	case *algebra.Product:
		return e.runProduct(x)
	case *algebra.Join:
		return e.runJoin(x)
	case *algebra.GroupBy:
		return e.runGroupBy(x)
	case *algebra.UDF:
		return e.runUDF(x)
	case *algebra.Encrypt:
		return e.runEncrypt(x)
	case *algebra.Decrypt:
		return e.runDecrypt(x)
	}
	return nil, fmt.Errorf("exec: unknown node type %T", n)
}

func (e *Executor) runBase(b *algebra.Base) (*Table, error) {
	t, ok := e.Tables[b.Name]
	if !ok {
		return nil, fmt.Errorf("exec: no table %q", b.Name)
	}
	indices := make([]int, len(b.Attrs))
	for i, a := range b.Attrs {
		ix := t.ColIndex(a)
		if ix < 0 {
			return nil, fmt.Errorf("exec: table %q has no column %s", b.Name, a)
		}
		indices[i] = ix
	}
	return t.Project(indices), nil
}

func (e *Executor) runProject(p *algebra.Project) (*Table, error) {
	in, err := e.runMaterializing(p.Child)
	if err != nil {
		return nil, err
	}
	indices := make([]int, len(p.Attrs))
	for i, a := range p.Attrs {
		ix := in.ColIndex(a)
		if ix < 0 {
			return nil, fmt.Errorf("exec: projection attribute %s not in input", a)
		}
		indices[i] = ix
	}
	return in.Project(indices), nil
}

func (e *Executor) runSelect(s *algebra.Select) (*Table, error) {
	in, err := e.runMaterializing(s.Child)
	if err != nil {
		return nil, err
	}
	resolver := newColResolver(in, s.Child)
	out := NewTable(in.Schema)
	for _, row := range in.Rows {
		ok, err := e.evalPred(s.Pred, row, resolver)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func (e *Executor) runProduct(p *algebra.Product) (*Table, error) {
	l, err := e.runMaterializing(p.L)
	if err != nil {
		return nil, err
	}
	r, err := e.runMaterializing(p.R)
	if err != nil {
		return nil, err
	}
	out := NewTable(append(append([]algebra.Attr{}, l.Schema...), r.Schema...))
	for _, lr := range l.Rows {
		for _, rr := range r.Rows {
			out.Rows = append(out.Rows, concatRows(lr, rr))
		}
	}
	return out, nil
}

func concatRows(a, b []Value) []Value {
	row := make([]Value, 0, len(a)+len(b))
	return append(append(row, a...), b...)
}

func (e *Executor) runJoin(j *algebra.Join) (*Table, error) {
	l, err := e.runMaterializing(j.L)
	if err != nil {
		return nil, err
	}
	r, err := e.runMaterializing(j.R)
	if err != nil {
		return nil, err
	}
	outSchema := append(append([]algebra.Attr{}, l.Schema...), r.Schema...)
	out := NewTable(outSchema)

	// Hash join on the first equality pair with one side in each input;
	// residual conjuncts filter the matches.
	var hashL, hashR int = -1, -1
	var residual []algebra.Pred
	conjs := algebra.Conjuncts(j.Cond)
	for _, c := range conjs {
		if aa, ok := c.(*algebra.CmpAA); ok && aa.Op == sql.OpEq && hashL < 0 {
			li, ri := l.ColIndex(aa.L), r.ColIndex(aa.R)
			if li < 0 || ri < 0 {
				li, ri = l.ColIndex(aa.R), r.ColIndex(aa.L)
			}
			if li >= 0 && ri >= 0 {
				hashL, hashR = li, ri
				continue
			}
		}
		residual = append(residual, c)
	}
	resPred := algebra.And(residual...)
	resolver := joinResolver(out, j)

	emit := func(lr, rr []Value) error {
		row := concatRows(lr, rr)
		if resPred != nil {
			ok, err := e.evalPred(resPred, row, resolver)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		out.Rows = append(out.Rows, row)
		return nil
	}

	if hashL >= 0 {
		index := make(map[string][][]Value, r.Len())
		for _, rr := range r.Rows {
			k, err := groupKey(rr[hashR])
			if err != nil {
				return nil, err
			}
			index[k] = append(index[k], rr)
		}
		for _, lr := range l.Rows {
			k, err := groupKey(lr[hashL])
			if err != nil {
				return nil, err
			}
			for _, rr := range index[k] {
				if err := emit(lr, rr); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}

	// Nested loop for non-equality joins.
	full := j.Cond
	for _, lr := range l.Rows {
		for _, rr := range r.Rows {
			row := concatRows(lr, rr)
			ok, err := e.evalPred(full, row, resolver)
			if err != nil {
				return nil, err
			}
			if ok {
				out.Rows = append(out.Rows, row)
			}
		}
	}
	return out, nil
}

func (e *Executor) runUDF(u *algebra.UDF) (*Table, error) {
	in, err := e.runMaterializing(u.Child)
	if err != nil {
		return nil, err
	}
	fn, ok := e.UDFs[u.Name]
	if !ok {
		return nil, fmt.Errorf("exec: udf %q not registered", u.Name)
	}
	argIdx := make([]int, len(u.Args))
	for i, a := range u.Args {
		ix := in.ColIndex(a)
		if ix < 0 {
			return nil, fmt.Errorf("exec: udf argument %s not in input", a)
		}
		argIdx[i] = ix
	}
	outSchema := u.Schema()
	out := NewTable(outSchema)
	for _, row := range in.Rows {
		args := make([]Value, len(argIdx))
		for i, ix := range argIdx {
			if row[ix].IsCipher() {
				return nil, fmt.Errorf("exec: udf %q over encrypted argument %s", u.Name, u.Args[i])
			}
			args[i] = row[ix]
		}
		res, err := fn(args)
		if err != nil {
			return nil, fmt.Errorf("exec: udf %q: %w", u.Name, err)
		}
		outRow := make([]Value, len(outSchema))
		for i, a := range outSchema {
			if a == u.Out {
				outRow[i] = res
			} else {
				outRow[i] = row[in.ColIndex(a)]
			}
		}
		out.Rows = append(out.Rows, outRow)
	}
	return out, nil
}

func (e *Executor) runEncrypt(enc *algebra.Encrypt) (*Table, error) {
	in, err := e.runMaterializing(enc.Child)
	if err != nil {
		return nil, err
	}
	out := NewTable(in.Schema)
	out.Rows = make([][]Value, len(in.Rows))
	for ri, row := range in.Rows {
		out.Rows[ri] = append([]Value{}, row...)
	}
	for _, a := range enc.Attrs {
		scheme := enc.Schemes[a]
		if scheme == "" {
			scheme = algebra.SchemeDeterministic
		}
		keyID := enc.KeyIDs[a]
		ring, err := e.Keys.Get(keyID)
		if err != nil {
			return nil, fmt.Errorf("exec: encrypting %s: %w", a, err)
		}
		for ci, sa := range in.Schema {
			if sa != a {
				continue
			}
			for ri := range out.Rows {
				v := out.Rows[ri][ci]
				if v.IsCipher() {
					return nil, fmt.Errorf("exec: re-encrypting %s", a)
				}
				cv, err := EncryptValue(ring, scheme, v)
				if err != nil {
					return nil, fmt.Errorf("exec: encrypting %s: %w", a, err)
				}
				out.Rows[ri][ci] = cv
			}
		}
	}
	return out, nil
}

// EncryptValue encrypts one plaintext value under the scheme with the key
// ring. Besides the Encrypt plan operator, data authorities use it to
// encrypt relations at rest before outsourcing their storage.
func EncryptValue(ring *crypto.KeyRing, scheme algebra.Scheme, v Value) (Value, error) {
	c := &Cipher{Scheme: scheme, KeyID: ring.ID, Plain: v.Kind}
	switch scheme {
	case algebra.SchemeDeterministic:
		d, err := ring.Det()
		if err != nil {
			return Value{}, err
		}
		pt, err := encodePlain(v)
		if err != nil {
			return Value{}, err
		}
		ct, err := d.Encrypt(pt)
		if err != nil {
			return Value{}, err
		}
		c.Data = ct
	case algebra.SchemeRandom:
		r, err := ring.Rnd()
		if err != nil {
			return Value{}, err
		}
		pt, err := encodePlain(v)
		if err != nil {
			return Value{}, err
		}
		ct, err := r.Encrypt(pt)
		if err != nil {
			return Value{}, err
		}
		c.Data = ct
	case algebra.SchemeOPE:
		o, err := ring.OPE()
		if err != nil {
			return Value{}, err
		}
		enc, err := opeEncode(v)
		if err != nil {
			return Value{}, err
		}
		c.Data = o.Encrypt(enc)
	case algebra.SchemePaillier:
		m, err := pheEncode(v)
		if err != nil {
			return Value{}, err
		}
		ct, err := ring.PK.Encrypt(m)
		if err != nil {
			return Value{}, err
		}
		c.Phe = ct
		c.Div = 1
	default:
		return Value{}, fmt.Errorf("exec: unknown scheme %q", scheme)
	}
	return Enc(c), nil
}

func (e *Executor) runDecrypt(dec *algebra.Decrypt) (*Table, error) {
	in, err := e.runMaterializing(dec.Child)
	if err != nil {
		return nil, err
	}
	out := NewTable(in.Schema)
	out.Rows = make([][]Value, len(in.Rows))
	for ri, row := range in.Rows {
		out.Rows[ri] = append([]Value{}, row...)
	}
	for _, a := range dec.Attrs {
		for ci, sa := range in.Schema {
			if sa != a {
				continue
			}
			for ri := range out.Rows {
				v := out.Rows[ri][ci]
				if !v.IsCipher() {
					return nil, fmt.Errorf("exec: decrypting plaintext %s", a)
				}
				pv, err := e.DecryptValue(v.C)
				if err != nil {
					return nil, fmt.Errorf("exec: decrypting %s: %w", a, err)
				}
				out.Rows[ri][ci] = pv
			}
		}
	}
	return out, nil
}

// DecryptValue decrypts one ciphertext with the executor's keys.
func (e *Executor) DecryptValue(c *Cipher) (Value, error) {
	ring, err := e.Keys.Get(c.KeyID)
	if err != nil {
		return Value{}, err
	}
	return decryptCipher(ring, c)
}

// decryptCipher decrypts one ciphertext with an already-resolved key ring
// (the batch pipeline caches ring lookups per operator).
func decryptCipher(ring *crypto.KeyRing, c *Cipher) (Value, error) {
	switch c.Scheme {
	case algebra.SchemeDeterministic:
		d, err := ring.Det()
		if err != nil {
			return Value{}, err
		}
		pt, err := d.Decrypt(c.Data)
		if err != nil {
			return Value{}, err
		}
		return decodePlain(pt)
	case algebra.SchemeRandom:
		r, err := ring.Rnd()
		if err != nil {
			return Value{}, err
		}
		pt, err := r.Decrypt(c.Data)
		if err != nil {
			return Value{}, err
		}
		return decodePlain(pt)
	case algebra.SchemeOPE:
		o, err := ring.OPE()
		if err != nil {
			return Value{}, err
		}
		enc, err := o.Decrypt(c.Data)
		if err != nil {
			return Value{}, err
		}
		return opeDecode(enc, c.Plain)
	case algebra.SchemePaillier:
		if !ring.PK.HasPrivate() {
			return Value{}, fmt.Errorf("exec: key %s lacks the Paillier private part", c.KeyID)
		}
		m, err := ring.PK.Decrypt(c.Phe)
		if err != nil {
			return Value{}, err
		}
		return pheDecode(m, c.Div, c.Plain)
	}
	return Value{}, fmt.Errorf("exec: unknown scheme %q", c.Scheme)
}

// runGroupBy hash-aggregates the input. Grouping keys may be plaintext or
// deterministic/OPE ciphertexts; sums and averages over Paillier
// ciphertexts accumulate homomorphically with the public key.
func (e *Executor) runGroupBy(g *algebra.GroupBy) (*Table, error) {
	in, err := e.runMaterializing(g.Child)
	if err != nil {
		return nil, err
	}
	keyIdx := make([]int, len(g.Keys))
	for i, k := range g.Keys {
		ix := in.ColIndex(k)
		if ix < 0 {
			return nil, fmt.Errorf("exec: group key %s not in input", k)
		}
		keyIdx[i] = ix
	}
	aggIdx := make([]int, len(g.Aggs))
	for i, sp := range g.Aggs {
		if sp.Star {
			aggIdx[i] = -1
			continue
		}
		ix := in.ColIndex(sp.Attr)
		if ix < 0 {
			return nil, fmt.Errorf("exec: aggregate attribute %s not in input", sp.Attr)
		}
		aggIdx[i] = ix
	}

	type group struct {
		keyVals []Value
		accs    []*accumulator
	}
	groups := make(map[string]*group)
	var order []string

	for _, row := range in.Rows {
		hk := ""
		for _, ix := range keyIdx {
			k, err := groupKey(row[ix])
			if err != nil {
				return nil, err
			}
			hk += k + "\x1f"
		}
		grp, ok := groups[hk]
		if !ok {
			grp = &group{keyVals: make([]Value, len(keyIdx)), accs: make([]*accumulator, len(g.Aggs))}
			for i, ix := range keyIdx {
				grp.keyVals[i] = row[ix]
			}
			for i, sp := range g.Aggs {
				grp.accs[i] = newAccumulator(sp.Func)
			}
			groups[hk] = grp
			order = append(order, hk)
		}
		for i, sp := range g.Aggs {
			var v Value
			if !sp.Star {
				v = row[aggIdx[i]]
			}
			if err := grp.accs[i].add(e, sp, v); err != nil {
				return nil, err
			}
		}
	}

	out := NewTable(g.Schema())
	for _, hk := range order {
		grp := groups[hk]
		row := make([]Value, 0, len(grp.keyVals)+len(g.Aggs))
		row = append(row, grp.keyVals...)
		for i := range g.Aggs {
			v, err := grp.accs[i].result()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// accumulator computes one aggregate over a group.
type accumulator struct {
	fn    sql.AggFunc
	count int64
	sum   float64
	min   Value
	max   Value
	phe   *big.Int
	pheC  *Cipher
}

func newAccumulator(fn sql.AggFunc) *accumulator { return &accumulator{fn: fn} }

func (a *accumulator) add(e *Executor, sp algebra.AggSpec, v Value) error {
	a.count++
	switch a.fn {
	case sql.AggCount:
		return nil
	case sql.AggSum, sql.AggAvg:
		if v.IsCipher() {
			if v.C.Scheme != algebra.SchemePaillier {
				return fmt.Errorf("exec: %s over %s ciphertext", a.fn, v.C.Scheme)
			}
			ring, err := e.Keys.Get(v.C.KeyID)
			if err != nil {
				return err
			}
			if a.phe == nil {
				a.phe = v.C.Phe
				a.pheC = v.C
			} else {
				a.phe = ring.PK.Add(a.phe, v.C.Phe)
			}
			return nil
		}
		f, err := v.AsFloat()
		if err != nil {
			return err
		}
		a.sum += f
		return nil
	case sql.AggMin, sql.AggMax:
		if a.count == 1 {
			a.min, a.max = v, v
			return nil
		}
		c, err := compareForSort(v, a.min)
		if err != nil {
			return err
		}
		if c < 0 {
			a.min = v
		}
		c, err = compareForSort(v, a.max)
		if err != nil {
			return err
		}
		if c > 0 {
			a.max = v
		}
		return nil
	}
	return fmt.Errorf("exec: unknown aggregate %q", a.fn)
}

func (a *accumulator) result() (Value, error) {
	switch a.fn {
	case sql.AggCount:
		return Int(a.count), nil
	case sql.AggSum:
		if a.phe != nil {
			return Enc(&Cipher{Scheme: algebra.SchemePaillier, KeyID: a.pheC.KeyID, Phe: a.phe, Div: 1, Plain: a.pheC.Plain}), nil
		}
		return Float(a.sum), nil
	case sql.AggAvg:
		if a.phe != nil {
			return Enc(&Cipher{Scheme: algebra.SchemePaillier, KeyID: a.pheC.KeyID, Phe: a.phe, Div: a.count, Plain: KFloat}), nil
		}
		if a.count == 0 {
			return Null(), nil
		}
		return Float(a.sum / float64(a.count)), nil
	case sql.AggMin:
		return a.min, nil
	case sql.AggMax:
		return a.max, nil
	}
	return Value{}, fmt.Errorf("exec: unknown aggregate %q", a.fn)
}
