package exec

import (
	"fmt"
	"testing"

	"mpq/internal/algebra"
	"mpq/internal/crypto"
)

// mixedColumn builds a column of n values cycling through ints, floats,
// strings, and NULLs (numericOnly restricts it to the kinds OPE and
// Paillier accept).
func mixedColumn(n int, numericOnly bool) []Value {
	out := make([]Value, n)
	for i := range out {
		switch i % 4 {
		case 0:
			out[i] = Int(int64(i) - 3)
		case 1:
			out[i] = Float(float64(i) * 1.25)
		case 2:
			if numericOnly {
				out[i] = Int(int64(-i))
			} else {
				out[i] = String(fmt.Sprintf("value-%d", i))
			}
		default:
			if numericOnly {
				out[i] = Float(-0.5 * float64(i))
			} else {
				out[i] = Null()
			}
		}
	}
	return out
}

func schemeColumn(scheme algebra.Scheme, n int) []Value {
	numeric := scheme == algebra.SchemeOPE || scheme == algebra.SchemePaillier
	return mixedColumn(n, numeric)
}

// requireDecryptsTo decrypts cv with the ring and compares to want.
func requireDecryptsTo(t *testing.T, ring *crypto.KeyRing, cv Value, want Value) {
	t.Helper()
	if !cv.IsCipher() {
		t.Fatalf("expected ciphertext, got %v", cv)
	}
	got, err := decryptCipher(ring, cv.C)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("decrypt = %v, want %v", got, want)
	}
}

// TestEncryptColumnEquivalence proves the batch entry point matches the
// per-value path on every scheme: bit-identical ciphertexts for the
// deterministic schemes, decrypt-identical for the randomized ones —
// across empty batches, NULLs, and batch sizes 1 and 7 (size 1M runs in
// TestBatchMillionRows).
func TestEncryptColumnEquivalence(t *testing.T) {
	ring, err := crypto.NewKeyRing("k1", testPaillierBits)
	if err != nil {
		t.Fatal(err)
	}
	schemes := []algebra.Scheme{
		algebra.SchemeDeterministic, algebra.SchemeRandom,
		algebra.SchemeOPE, algebra.SchemePaillier,
	}
	for _, scheme := range schemes {
		for _, n := range []int{0, 1, 7, 100} {
			t.Run(fmt.Sprintf("%s/%d", scheme, n), func(t *testing.T) {
				vals := schemeColumn(scheme, n)
				got, err := EncryptColumn(ring, scheme, vals)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != n {
					t.Fatalf("batch returned %d values for %d inputs", len(got), n)
				}
				for i, v := range vals {
					want, err := EncryptValue(ring, scheme, v)
					if err != nil {
						t.Fatal(err)
					}
					switch scheme {
					case algebra.SchemeDeterministic, algebra.SchemeOPE:
						// Deterministic schemes: byte-identical.
						if string(got[i].C.Data) != string(want.C.Data) {
							t.Fatalf("batch ciphertext %d differs from per-value path", i)
						}
						if got[i].C.Plain != want.C.Plain || got[i].C.KeyID != want.C.KeyID {
							t.Fatalf("batch cipher metadata %d differs", i)
						}
					}
					// All schemes: decrypts to the original value.
					requireDecryptsTo(t, ring, got[i], v)
				}
			})
		}
	}
}

// TestDecryptRowsEquivalence proves batch decryption (grouped by scheme and
// key, mixed plaintext cells passed through) matches the per-value path.
func TestDecryptRowsEquivalence(t *testing.T) {
	ring1, _ := crypto.NewKeyRing("k1", testPaillierBits)
	ring2, _ := crypto.NewKeyRing("k2", testPaillierBits)
	e := NewExecutor()
	e.Keys.Add(ring1)
	e.Keys.Add(ring2)

	// Rows mixing plaintext cells with ciphers of all four schemes under
	// two distinct keys.
	var rows [][]Value
	for i := 0; i < 40; i++ {
		ring := ring1
		if i%3 == 0 {
			ring = ring2
		}
		det, err := EncryptValue(ring, algebra.SchemeDeterministic, String(fmt.Sprintf("s%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rnd, err := EncryptValue(ring, algebra.SchemeRandom, Int(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ope, err := EncryptValue(ring, algebra.SchemeOPE, Float(float64(i)/2))
		if err != nil {
			t.Fatal(err)
		}
		phe, err := EncryptValue(ring, algebra.SchemePaillier, Int(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, []Value{Int(int64(i)), det, rnd, Null(), ope, phe, String("plain")})
	}

	got, err := e.DecryptRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewExecutor()
	oracle.Keys = e.Keys
	oracle.ValueCrypto = true
	want, err := oracle.DecryptRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("row counts differ: %d vs %d", len(got), len(want))
	}
	for ri := range got {
		for ci := range got[ri] {
			if got[ri][ci] != want[ri][ci] {
				t.Fatalf("row %d col %d: batch %v, per-value %v", ri, ci, got[ri][ci], want[ri][ci])
			}
		}
	}
	// Inputs untouched: the ciphers must still be ciphers.
	if !rows[0][1].IsCipher() {
		t.Fatalf("DecryptRows mutated its input")
	}
}

// TestEncryptColumnWorkerPool runs the batch path with a forced worker pool
// (CryptoWorkers > GOMAXPROCS is allowed so -race exercises real
// concurrency even on one core) and checks results against the per-value
// path.
func TestEncryptColumnWorkerPool(t *testing.T) {
	ring, err := crypto.NewKeyRing("k1", testPaillierBits)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor()
	e.Keys.Add(ring)
	e.CryptoWorkers = 4

	const n = 4 * cryptoParMinCells // large enough that runChunks fans out
	for _, scheme := range []algebra.Scheme{algebra.SchemeDeterministic, algebra.SchemeRandom, algebra.SchemeOPE} {
		vals := schemeColumn(scheme, n)
		dst := make([]Value, n)
		if err := encryptColumnPar(e, ring, scheme, vals, dst); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i += 97 {
			requireDecryptsTo(t, ring, dst[i], vals[i])
		}
		// And decrypt the column back through the pooled batch path.
		rows := make([][]Value, n)
		for i := range rows {
			rows[i] = []Value{dst[i]}
		}
		back, err := e.DecryptRows(rows)
		if err != nil {
			t.Fatal(err)
		}
		for i := range back {
			if back[i][0] != vals[i] {
				t.Fatalf("%s pooled round trip row %d = %v, want %v", scheme, i, back[i][0], vals[i])
			}
		}
	}
	// Paillier with the pool (its fan-out threshold is lower).
	vals := schemeColumn(algebra.SchemePaillier, 64)
	dst := make([]Value, len(vals))
	if err := encryptColumnPar(e, ring, algebra.SchemePaillier, vals, dst); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		requireDecryptsTo(t, ring, dst[i], vals[i])
	}
}

// TestBatchMillionRows is the 1M-cell batch-size case: encrypt and decrypt
// a million-value column through the batched path with the worker pool
// enabled and spot-check equivalence against the per-value path.
func TestBatchMillionRows(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-cell batch in -short mode")
	}
	ring, err := crypto.NewKeyRing("k1", testPaillierBits)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor()
	e.Keys.Add(ring)
	e.CryptoWorkers = 4

	const n = 1 << 20
	vals := mixedColumn(n, false)
	dst := make([]Value, n)
	if err := encryptColumnPar(e, ring, algebra.SchemeRandom, vals, dst); err != nil {
		t.Fatal(err)
	}
	rows := make([][]Value, n)
	for i := range rows {
		rows[i] = dst[i : i+1]
	}
	back, err := e.DecryptRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 10007 {
		if back[i][0] != vals[i] {
			t.Fatalf("row %d = %v, want %v", i, back[i][0], vals[i])
		}
	}
	// Deterministic 1M: batch output must be bit-identical to the
	// per-value path (spot-checked).
	det := make([]Value, n)
	if err := encryptColumnPar(e, ring, algebra.SchemeDeterministic, vals, det); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 50021 {
		want, err := EncryptValue(ring, algebra.SchemeDeterministic, vals[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(det[i].C.Data) != string(want.C.Data) {
			t.Fatalf("det 1M cell %d differs from per-value path", i)
		}
	}
}

// TestEncryptOpBatchVsValueCrypto runs the Encrypt→Decrypt operator
// pipeline both ways over a plan and diffs the results row for row.
func TestEncryptOpBatchVsValueCrypto(t *testing.T) {
	ring, err := crypto.NewKeyRing("k1", testPaillierBits)
	if err != nil {
		t.Fatal(err)
	}
	run := func(valueCrypto bool, workers int) *Table {
		t.Helper()
		e := NewExecutor()
		e.Keys.Add(ring)
		e.ValueCrypto = valueCrypto
		e.CryptoWorkers = workers
		a, bAttr := algebra.A("R", "a"), algebra.A("R", "b")
		tbl := NewTable([]algebra.Attr{a, bAttr})
		for i := 0; i < 500; i++ {
			tbl.Rows = append(tbl.Rows, []Value{Int(int64(i % 17)), String(fmt.Sprintf("v%d", i))})
		}
		e.Tables["R"] = tbl
		base := algebra.NewBase("R", "A", tbl.Schema, float64(tbl.Len()), nil)
		enc := algebra.NewEncrypt(base, tbl.Schema)
		enc.Schemes[a] = algebra.SchemeOPE
		enc.Schemes[bAttr] = algebra.SchemeDeterministic
		enc.KeyIDs[a] = "k1"
		enc.KeyIDs[bAttr] = "k1"
		dec := algebra.NewDecrypt(enc, tbl.Schema)
		out, err := e.Run(dec)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(true, 1)
	for _, workers := range []int{1, 4} {
		got := run(false, workers)
		if got.Len() != want.Len() {
			t.Fatalf("workers=%d: %d rows, want %d", workers, got.Len(), want.Len())
		}
		for ri := range got.Rows {
			for ci := range got.Rows[ri] {
				if got.Rows[ri][ci] != want.Rows[ri][ci] {
					t.Fatalf("workers=%d: row %d col %d = %v, want %v", workers, ri, ci, got.Rows[ri][ci], want.Rows[ri][ci])
				}
			}
		}
	}
}

// TestDecryptOpErrors keeps the operator-level error contract of the batch
// path identical to the per-value path.
func TestDecryptOpErrors(t *testing.T) {
	ring, _ := crypto.NewKeyRing("k1", testPaillierBits)
	a := algebra.A("R", "a")
	for _, valueCrypto := range []bool{false, true} {
		// Decrypting a plaintext column errors on both paths.
		e := NewExecutor()
		e.Keys.Add(ring)
		e.ValueCrypto = valueCrypto
		tbl := NewTable([]algebra.Attr{a})
		tbl.Rows = append(tbl.Rows, []Value{Int(7)})
		e.Tables["R"] = tbl
		base := algebra.NewBase("R", "A", tbl.Schema, float64(tbl.Len()), nil)
		dec := algebra.NewDecrypt(base, tbl.Schema)
		if _, err := e.Run(dec); err == nil {
			t.Errorf("valueCrypto=%v: decrypting plaintext succeeded", valueCrypto)
		}

		// Re-encryption of an already encrypted column errors on both paths.
		e2 := NewExecutor()
		e2.Keys.Add(ring)
		e2.ValueCrypto = valueCrypto
		tbl2 := NewTable([]algebra.Attr{a})
		cv, err := EncryptValue(ring, algebra.SchemeDeterministic, Int(1))
		if err != nil {
			t.Fatal(err)
		}
		tbl2.Rows = append(tbl2.Rows, []Value{cv})
		e2.Tables["R"] = tbl2
		base2 := algebra.NewBase("R", "A", tbl2.Schema, float64(tbl2.Len()), nil)
		enc := algebra.NewEncrypt(base2, tbl2.Schema)
		enc.Schemes[a] = algebra.SchemeDeterministic
		enc.KeyIDs[a] = "k1"
		if _, err := e2.Run(enc); err == nil {
			t.Errorf("valueCrypto=%v: re-encryption succeeded", valueCrypto)
		}
	}
}
