package exec

import (
	"fmt"
	"math"
	"strings"

	"mpq/internal/algebra"
	"mpq/internal/crypto"
	"mpq/internal/profile"
	"mpq/internal/sql"
)

// colResolver maps predicate references to column indices, resolving
// aggregate references (HAVING avg(P) > 100) to the matching aggregate
// output column of the group-by beneath.
type colResolver struct {
	table   *Table
	aggCols map[string]int
}

func aggKey(f sql.AggFunc, a algebra.Attr, star bool) string {
	if star {
		return "*" + string(f)
	}
	return string(f) + "|" + a.String()
}

// newColResolver builds a resolver for rows of t produced by source.
func newColResolver(t *Table, source algebra.Node) *colResolver {
	r := &colResolver{table: t, aggCols: make(map[string]int)}
	// Unwrap encryption/decryption wrappers to find a group-by beneath.
	n := source
	for {
		switch x := n.(type) {
		case *algebra.Encrypt:
			n = x.Child
			continue
		case *algebra.Decrypt:
			n = x.Child
			continue
		case *algebra.GroupBy:
			for j, sp := range x.Aggs {
				k := aggKey(sp.Func, sp.Attr, sp.Star)
				if _, dup := r.aggCols[k]; !dup {
					r.aggCols[k] = len(x.Keys) + j
				}
			}
		}
		break
	}
	return r
}

// joinResolver builds a plain resolver over the join output (no aggregate
// columns can be referenced by a join condition).
func joinResolver(t *Table, _ *algebra.Join) *colResolver {
	return &colResolver{table: t, aggCols: map[string]int{}}
}

// colFor returns the column index for a value comparison's left side.
func (r *colResolver) colFor(a algebra.Attr, agg sql.AggFunc) (int, error) {
	if agg != sql.AggNone {
		if ix, ok := r.aggCols[aggKey(agg, a, algebra.IsSynthetic(a))]; ok {
			return ix, nil
		}
	}
	if ix := r.table.ColIndex(a); ix >= 0 {
		return ix, nil
	}
	return -1, fmt.Errorf("exec: attribute %s not in row", a)
}

// evalPred evaluates a predicate over one row.
func (e *Executor) evalPred(p algebra.Pred, row []Value, r *colResolver) (bool, error) {
	switch x := p.(type) {
	case *algebra.CmpAV:
		return e.evalCmpAV(x, row, r)
	case *algebra.CmpAA:
		return e.evalCmpAA(x, row, r)
	case *algebra.AndPred:
		for _, q := range x.Preds {
			ok, err := e.evalPred(q, row, r)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case *algebra.OrPred:
		for _, q := range x.Preds {
			ok, err := e.evalPred(q, row, r)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case *algebra.NotPred:
		ok, err := e.evalPred(x.Inner, row, r)
		return !ok, err
	}
	return false, fmt.Errorf("exec: unknown predicate %T", p)
}

func (e *Executor) evalCmpAV(c *algebra.CmpAV, row []Value, r *colResolver) (bool, error) {
	ix, err := r.colFor(c.A, c.Agg)
	if err != nil {
		return false, err
	}
	v := row[ix]
	if v.IsCipher() {
		return e.evalCipherConst(c, v)
	}
	rhs := litValue(c.V)
	if c.Op == sql.OpLike {
		if v.Kind != KString || !rhs.IsCipher() && rhs.Kind != KString {
			return false, fmt.Errorf("exec: LIKE over non-string")
		}
		return likeMatch(v.S, rhs.S), nil
	}
	cmp, err := compare(v, rhs)
	if err != nil {
		return false, err
	}
	return opHolds(c.Op, cmp), nil
}

func (e *Executor) evalCipherConst(c *algebra.CmpAV, v Value) (bool, error) {
	konst, ok := e.Consts[c]
	if !ok {
		return false, fmt.Errorf("exec: no encrypted constant for condition %s (not dispatched?)", c)
	}
	if !konst.IsCipher() {
		return false, fmt.Errorf("exec: constant for %s is not encrypted", c)
	}
	switch v.C.Scheme {
	case algebra.SchemeDeterministic:
		if c.Op != sql.OpEq && c.Op != sql.OpNeq {
			return false, fmt.Errorf("exec: %s over deterministic ciphertext", c.Op)
		}
		eq := crypto.Equal(v.C.Data, konst.C.Data)
		if c.Op == sql.OpNeq {
			return !eq, nil
		}
		return eq, nil
	case algebra.SchemeOPE:
		cmp := crypto.CompareOPE(v.C.Data, konst.C.Data)
		return opHolds(c.Op, cmp), nil
	default:
		return false, fmt.Errorf("exec: cannot evaluate %s over %s ciphertext", c.Op, v.C.Scheme)
	}
}

func (e *Executor) evalCmpAA(c *algebra.CmpAA, row []Value, r *colResolver) (bool, error) {
	li, err := r.colFor(c.L, sql.AggNone)
	if err != nil {
		return false, err
	}
	ri, err := r.colFor(c.R, sql.AggNone)
	if err != nil {
		return false, err
	}
	l, rv := row[li], row[ri]
	switch {
	case l.IsCipher() && rv.IsCipher():
		if l.C.Scheme != rv.C.Scheme {
			return false, fmt.Errorf("exec: comparing %s with %s ciphertexts", l.C.Scheme, rv.C.Scheme)
		}
		switch l.C.Scheme {
		case algebra.SchemeDeterministic:
			if c.Op != sql.OpEq && c.Op != sql.OpNeq {
				return false, fmt.Errorf("exec: %s over deterministic ciphertexts", c.Op)
			}
			eq := crypto.Equal(l.C.Data, rv.C.Data)
			if c.Op == sql.OpNeq {
				return !eq, nil
			}
			return eq, nil
		case algebra.SchemeOPE:
			return opHolds(c.Op, crypto.CompareOPE(l.C.Data, rv.C.Data)), nil
		default:
			return false, fmt.Errorf("exec: cannot compare %s ciphertexts", l.C.Scheme)
		}
	case !l.IsCipher() && !rv.IsCipher():
		cmp, err := compare(l, rv)
		if err != nil {
			return false, err
		}
		return opHolds(c.Op, cmp), nil
	default:
		return false, fmt.Errorf("exec: mixed plaintext/ciphertext comparison %s", c)
	}
}

// opHolds evaluates a three-way comparison result against an operator.
func opHolds(op sql.CompareOp, cmp int) bool {
	switch op {
	case sql.OpEq:
		return cmp == 0
	case sql.OpNeq:
		return cmp != 0
	case sql.OpLt:
		return cmp < 0
	case sql.OpLeq:
		return cmp <= 0
	case sql.OpGt:
		return cmp > 0
	case sql.OpGeq:
		return cmp >= 0
	}
	return false
}

// litValue converts a SQL literal to a runtime value.
func litValue(v sql.Value) Value {
	if v.IsString {
		return String(v.Str)
	}
	return Float(v.Num)
}

// likeMatch implements SQL LIKE with % (any run) and _ (any one char).
func likeMatch(s, pattern string) bool {
	var rec func(si, pi int) bool
	rec = func(si, pi int) bool {
		for pi < len(pattern) {
			switch pattern[pi] {
			case '%':
				for k := si; k <= len(s); k++ {
					if rec(k, pi+1) {
						return true
					}
				}
				return false
			case '_':
				if si >= len(s) {
					return false
				}
				si++
				pi++
			default:
				if si >= len(s) || s[si] != pattern[pi] {
					return false
				}
				si++
				pi++
			}
		}
		return si == len(s)
	}
	return rec(0, 0)
}

// ---------------------------------------------------------------------------
// Constant dispatch

// AttrKinds maps attributes to their plaintext value kinds, used to encode
// predicate constants exactly as the stored values are encoded.
type AttrKinds map[algebra.Attr]Kind

// KindsFromCatalog derives attribute kinds from a catalog.
func KindsFromCatalog(cat *algebra.Catalog) AttrKinds {
	out := make(AttrKinds)
	for _, name := range cat.Names() {
		rel := cat.Relation(name)
		for _, col := range rel.Columns {
			a := algebra.Attr{Rel: name, Name: col.Name}
			switch col.Type {
			case algebra.TInt, algebra.TDate:
				out[a] = KInt
			case algebra.TFloat:
				out[a] = KFloat
			default:
				out[a] = KString
			}
		}
	}
	return out
}

// PrepareConstants walks an extended plan and pre-encrypts every literal
// compared against an attribute that is encrypted at that point, using the
// keys of the dispatching subject. The resulting cache ships with the
// sub-queries so that providers can evaluate conditions over ciphertexts
// without holding keys.
func PrepareConstants(root algebra.Node, keys *crypto.KeyStore, kinds AttrKinds) (ConstCache, error) {
	// Per-attribute scheme and key from the plan's encryption operations.
	schemes := make(map[algebra.Attr]algebra.Scheme)
	keyIDs := make(map[algebra.Attr]string)
	algebra.PostOrder(root, func(n algebra.Node) {
		switch x := n.(type) {
		case *algebra.Encrypt:
			for _, a := range x.Attrs {
				schemes[a] = x.Schemes[a]
				keyIDs[a] = x.KeyIDs[a]
			}
		case *algebra.Base:
			// Attributes stored encrypted at rest (deterministic).
			for a := range x.EncSet() {
				schemes[a] = algebra.SchemeDeterministic
				keyIDs[a] = x.StorageKey
			}
		}
	})
	profiles := profile.ForPlan(root)
	cache := make(ConstCache)
	var firstErr error

	algebra.PostOrder(root, func(n algebra.Node) {
		if firstErr != nil {
			return
		}
		var pred algebra.Pred
		switch x := n.(type) {
		case *algebra.Select:
			pred = x.Pred
		case *algebra.Join:
			pred = x.Cond
		default:
			return
		}
		encrypted := algebra.NewAttrSet()
		for _, c := range n.Children() {
			encrypted = encrypted.Union(profiles[c].VE)
		}
		algebra.WalkPred(pred, func(q algebra.Pred) {
			if firstErr != nil {
				return
			}
			av, ok := q.(*algebra.CmpAV)
			if !ok || !encrypted.Has(av.A) {
				return
			}
			scheme, keyID := schemes[av.A], keyIDs[av.A]
			if keyID == "" {
				firstErr = fmt.Errorf("exec: no key recorded for encrypted attribute %s", av.A)
				return
			}
			ring, err := keys.Get(keyID)
			if err != nil {
				firstErr = fmt.Errorf("exec: dispatching constant for %s: %w", av.A, err)
				return
			}
			v := coerceLiteral(av.V, kinds[av.A])
			cv, err := EncryptValue(ring, scheme, v)
			if err != nil {
				firstErr = fmt.Errorf("exec: encrypting constant for %s: %w", av.A, err)
				return
			}
			cache[av] = cv
		})
	})
	return cache, firstErr
}

// coerceLiteral converts a SQL literal to the kind of the stored column, so
// deterministic encodings match.
func coerceLiteral(v sql.Value, kind Kind) Value {
	if v.IsString {
		return String(v.Str)
	}
	if kind == KInt {
		return Int(int64(math.Round(v.Num)))
	}
	return Float(v.Num)
}

// DisplayString renders a value row as tab-separated text (for CLI output).
func DisplayString(row []Value) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = v.String()
	}
	return strings.Join(parts, "\t")
}
