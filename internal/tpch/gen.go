package tpch

import (
	"fmt"
	"math"
	"math/rand"

	"mpq/internal/algebra"
	"mpq/internal/exec"
)

// Generate builds the eight TPC-H tables at the given scale factor with a
// deterministic seed. Scale factors far below 1 are intended for the
// executable examples and the distributed-execution tests; the cost
// experiments of Figures 9 and 10 only need the catalog statistics.
func Generate(sf float64, seed int64) map[string]*exec.Table {
	g := &gen{rnd: rand.New(rand.NewSource(seed)), sf: sf}
	out := make(map[string]*exec.Table, 8)
	out["region"] = g.region()
	out["nation"] = g.nation()
	out["supplier"] = g.supplier()
	out["customer"] = g.customer()
	out["part"] = g.part()
	out["partsupp"] = g.partsupp()
	out["orders"], out["lineitem"] = g.ordersAndLineitem()
	return out
}

type gen struct {
	rnd *rand.Rand
	sf  float64
}

func (g *gen) count(base float64) int {
	n := int(math.Round(base * g.sf))
	if n < 1 {
		n = 1
	}
	return n
}

func (g *gen) money(lo, hi float64) float64 {
	return math.Round((lo+g.rnd.Float64()*(hi-lo))*100) / 100
}

func (g *gen) words(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += " "
		}
		s += commentWords[g.rnd.Intn(len(commentWords))]
	}
	return s
}

func attrs(rel string, names ...string) []algebra.Attr {
	out := make([]algebra.Attr, len(names))
	for i, n := range names {
		out[i] = algebra.Attr{Rel: rel, Name: n}
	}
	return out
}

func (g *gen) region() *exec.Table {
	t := exec.NewTable(attrs("region", "r_regionkey", "r_name", "r_comment"))
	for i, name := range regionNames {
		mustAppend(t, []exec.Value{exec.Int(int64(i)), exec.String(name), exec.String(g.words(5))})
	}
	return t
}

func (g *gen) nation() *exec.Table {
	t := exec.NewTable(attrs("nation", "n_nationkey", "n_name", "n_regionkey", "n_comment"))
	for i, name := range nationNames {
		mustAppend(t, []exec.Value{
			exec.Int(int64(i)), exec.String(name), exec.Int(int64(i % 5)), exec.String(g.words(6)),
		})
	}
	return t
}

func (g *gen) supplier() *exec.Table {
	t := exec.NewTable(attrs("supplier",
		"s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone", "s_acctbal", "s_comment"))
	n := g.count(10000)
	for i := 1; i <= n; i++ {
		mustAppend(t, []exec.Value{
			exec.Int(int64(i)),
			exec.String(fmt.Sprintf("Supplier#%09d", i)),
			exec.String(g.words(3)),
			exec.Int(int64(g.rnd.Intn(25))),
			exec.String(fmt.Sprintf("%02d-%03d-%03d-%04d", 10+g.rnd.Intn(25), g.rnd.Intn(1000), g.rnd.Intn(1000), g.rnd.Intn(10000))),
			exec.Float(g.money(-999.99, 9999.99)),
			exec.String(g.words(7)),
		})
	}
	return t
}

func (g *gen) customer() *exec.Table {
	t := exec.NewTable(attrs("customer",
		"c_custkey", "c_name", "c_address", "c_nationkey", "c_phone", "c_acctbal", "c_mktsegment", "c_comment"))
	n := g.count(150000)
	for i := 1; i <= n; i++ {
		mustAppend(t, []exec.Value{
			exec.Int(int64(i)),
			exec.String(fmt.Sprintf("Customer#%09d", i)),
			exec.String(g.words(3)),
			exec.Int(int64(g.rnd.Intn(25))),
			exec.String(fmt.Sprintf("%02d-%03d-%03d-%04d", 10+g.rnd.Intn(25), g.rnd.Intn(1000), g.rnd.Intn(1000), g.rnd.Intn(10000))),
			exec.Float(g.money(-999.99, 9999.99)),
			exec.String(segments[g.rnd.Intn(len(segments))]),
			exec.String(g.words(8)),
		})
	}
	return t
}

func (g *gen) part() *exec.Table {
	t := exec.NewTable(attrs("part",
		"p_partkey", "p_name", "p_mfgr", "p_brand", "p_type", "p_size", "p_container", "p_retailprice", "p_comment"))
	n := g.count(200000)
	for i := 1; i <= n; i++ {
		mfgr := 1 + g.rnd.Intn(5)
		brand := mfgr*10 + 1 + g.rnd.Intn(5)
		name := nameWords[g.rnd.Intn(len(nameWords))] + " " + nameWords[g.rnd.Intn(len(nameWords))]
		ptype := typeSyllables1[g.rnd.Intn(len(typeSyllables1))] + " " +
			typeSyllables2[g.rnd.Intn(len(typeSyllables2))] + " " +
			typeSyllables3[g.rnd.Intn(len(typeSyllables3))]
		mustAppend(t, []exec.Value{
			exec.Int(int64(i)),
			exec.String(name),
			exec.String(fmt.Sprintf("Manufacturer#%d", mfgr)),
			exec.String(fmt.Sprintf("Brand#%d", brand)),
			exec.String(ptype),
			exec.Int(int64(1 + g.rnd.Intn(50))),
			exec.String(containers[g.rnd.Intn(len(containers))]),
			exec.Float(g.money(900, 2000)),
			exec.String(g.words(2)),
		})
	}
	return t
}

func (g *gen) partsupp() *exec.Table {
	t := exec.NewTable(attrs("partsupp",
		"ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost", "ps_value", "ps_comment"))
	parts := g.count(200000)
	supps := g.count(10000)
	for p := 1; p <= parts; p++ {
		for j := 0; j < 4; j++ {
			qty := 1 + g.rnd.Intn(9999)
			cost := g.money(1, 1000)
			mustAppend(t, []exec.Value{
				exec.Int(int64(p)),
				exec.Int(int64(1 + (p+j*parts/4)%supps)),
				exec.Int(int64(qty)),
				exec.Float(cost),
				exec.Float(math.Round(cost*float64(qty)*100) / 100),
				exec.String(g.words(10)),
			})
		}
	}
	return t
}

func (g *gen) ordersAndLineitem() (*exec.Table, *exec.Table) {
	orders := exec.NewTable(attrs("orders",
		"o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice", "o_orderdate",
		"o_orderpriority", "o_clerk", "o_shippriority", "o_comment"))
	items := exec.NewTable(attrs("lineitem",
		"l_orderkey", "l_partkey", "l_suppkey", "l_linenumber", "l_quantity",
		"l_extendedprice", "l_discount", "l_tax", "l_revenue", "l_discrev",
		"l_returnflag", "l_linestatus", "l_shipdate", "l_commitdate", "l_receiptdate",
		"l_shipinstruct", "l_shipmode", "l_comment"))

	nOrders := g.count(1500000)
	nCust := g.count(150000)
	nPart := g.count(200000)
	nSupp := g.count(10000)
	for o := 1; o <= nOrders; o++ {
		orderDate := int64(g.rnd.Intn(MaxDate - 150))
		nl := 1 + g.rnd.Intn(7)
		var total float64
		var allShipped, anyOpen bool = true, false
		type line struct {
			part, supp, qty       int64
			price, disc, tax      float64
			ship, commit, receipt int64
			rf, ls                string
		}
		lines := make([]line, nl)
		for i := range lines {
			l := &lines[i]
			l.part = int64(1 + g.rnd.Intn(nPart))
			l.supp = int64(1 + g.rnd.Intn(nSupp))
			l.qty = int64(1 + g.rnd.Intn(50))
			l.price = g.money(901, 104949) / 100 * float64(l.qty)
			l.price = math.Round(l.price*100) / 100
			l.disc = float64(g.rnd.Intn(11)) / 100
			l.tax = float64(g.rnd.Intn(9)) / 100
			l.ship = orderDate + int64(1+g.rnd.Intn(121))
			l.commit = orderDate + int64(30+g.rnd.Intn(61))
			l.receipt = l.ship + int64(1+g.rnd.Intn(30))
			if l.receipt <= int64(MaxDate)-1188 { // shipped long ago → returned or not
				if g.rnd.Intn(2) == 0 {
					l.rf = "R"
				} else {
					l.rf = "A"
				}
			} else {
				l.rf = "N"
			}
			if l.ship > int64(MaxDate)-181 {
				l.ls = "O"
				anyOpen = true
				allShipped = false
			} else {
				l.ls = "F"
			}
			total += l.price * (1 + l.tax)
		}
		status := "P"
		if allShipped {
			status = "F"
		} else if anyOpen && !allShipped {
			status = "O"
		}
		mustAppend(orders, []exec.Value{
			exec.Int(int64(o)),
			exec.Int(int64(1 + g.rnd.Intn(nCust))),
			exec.String(status),
			exec.Float(math.Round(total*100) / 100),
			exec.Int(orderDate),
			exec.String(priorities[g.rnd.Intn(len(priorities))]),
			exec.String(fmt.Sprintf("Clerk#%09d", 1+g.rnd.Intn(1000))),
			exec.Int(0),
			exec.String(g.words(6)),
		})
		for i, l := range lines {
			revenue := math.Round(l.price*(1-l.disc)*100) / 100
			discrev := math.Round(l.price*l.disc*100) / 100
			mustAppend(items, []exec.Value{
				exec.Int(int64(o)),
				exec.Int(l.part),
				exec.Int(l.supp),
				exec.Int(int64(i + 1)),
				exec.Int(l.qty),
				exec.Float(l.price),
				exec.Float(l.disc),
				exec.Float(l.tax),
				exec.Float(revenue),
				exec.Float(discrev),
				exec.String(l.rf),
				exec.String(l.ls),
				exec.Int(l.ship),
				exec.Int(l.commit),
				exec.Int(l.receipt),
				exec.String(instructs[g.rnd.Intn(len(instructs))]),
				exec.String(shipmodes[g.rnd.Intn(len(shipmodes))]),
				exec.String(g.words(4)),
			})
		}
	}
	return orders, items
}

// mustAppend adds a row to a generated relation, panicking on a width
// mismatch: a malformed generator is a programming error in the harness and
// must fail loudly at the fault, not produce a silently short relation.
func mustAppend(t *exec.Table, row []exec.Value) {
	if err := t.Append(row); err != nil {
		panic(err)
	}
}
