package tpch

import (
	"testing"

	"mpq/internal/algebra"
	"mpq/internal/planner"
	"mpq/internal/sql"
)

// TestTPCHPlansRespectPushdown verifies the classical-optimization
// assumptions the paper relies on, across the whole workload: projections
// pushed into the leaves (a leaf retrieves only attributes the query
// needs), single-relation filters pushed below joins, and no cartesian
// products (every workload query is join-connected).
func TestTPCHPlansRespectPushdown(t *testing.T) {
	cat := Catalog(1)
	pl := planner.New(cat)
	for _, q := range Queries() {
		plan, err := pl.PlanSQL(q.SQL)
		if err != nil {
			t.Fatalf("Q%d: %v", q.Num, err)
		}
		algebra.PostOrder(plan.Root, func(n algebra.Node) {
			switch x := n.(type) {
			case *algebra.Base:
				rel := cat.Relation(x.Name)
				if len(x.Attrs) >= len(rel.Columns) && len(rel.Columns) > 3 {
					t.Errorf("Q%d: leaf %s retrieves all %d columns (projection not pushed)",
						q.Num, x.Name, len(rel.Columns))
				}
			case *algebra.Product:
				t.Errorf("Q%d: cartesian product in plan", q.Num)
			case *algebra.Select:
				// A single-relation conjunction directly above a leaf is a
				// pushed filter; selections above joins must reference more
				// than one relation or aggregates.
				if _, overBase := x.Child.(*algebra.Base); !overBase {
					if _, overJoin := x.Child.(*algebra.Join); overJoin {
						rels := map[string]bool{}
						aggs := false
						algebra.WalkPred(x.Pred, func(p algebra.Pred) {
							switch c := p.(type) {
							case *algebra.CmpAV:
								rels[c.A.Rel] = true
								if c.Agg != "" {
									aggs = true
								}
							case *algebra.CmpAA:
								rels[c.L.Rel] = true
								rels[c.R.Rel] = true
							}
						})
						if len(rels) == 1 && !aggs {
							t.Errorf("Q%d: single-relation filter %s left above a join", q.Num, x.Pred)
						}
					}
				}
			}
		})
	}
}

// TestTPCHJoinCounts checks each plan joins exactly its FROM relations.
func TestTPCHJoinCounts(t *testing.T) {
	cat := Catalog(1)
	pl := planner.New(cat)
	for _, q := range Queries() {
		plan, err := pl.PlanSQL(q.SQL)
		if err != nil {
			t.Fatalf("Q%d: %v", q.Num, err)
		}
		leaves, joins := 0, 0
		algebra.PostOrder(plan.Root, func(n algebra.Node) {
			switch n.(type) {
			case *algebra.Base:
				leaves++
			case *algebra.Join:
				joins++
			}
		})
		if joins != leaves-1 {
			t.Errorf("Q%d: %d joins for %d leaves", q.Num, joins, leaves)
		}
	}
}

// TestTPCHGreedyPlanShapes runs the whole workload through the
// statistics-free greedy mode and checks the same structural guarantees the
// cost mode provides: every query stays join-connected (no cartesian
// products — greedy's connected-first expansion must find the join graph),
// joins exactly its FROM relations, keeps pushed-down filters below joins,
// and resolves its outputs. It also pins one ordering difference so the two
// modes demonstrably diverge: Q3 anchors on the relation carrying the
// equality pattern (customer's c_mktsegment) rather than FROM order.
func TestTPCHGreedyPlanShapes(t *testing.T) {
	cat := Catalog(1)
	pl := planner.New(cat)
	for _, q := range Queries() {
		stmt, err := sql.Parse(q.SQL)
		if err != nil {
			t.Fatalf("Q%d: %v", q.Num, err)
		}
		plan, err := pl.PlanWith(stmt, planner.PlanOptions{Mode: planner.ModeGreedy})
		if err != nil {
			t.Fatalf("Q%d (greedy): %v", q.Num, err)
		}
		leaves, joins := 0, 0
		algebra.PostOrder(plan.Root, func(n algebra.Node) {
			switch x := n.(type) {
			case *algebra.Base:
				leaves++
			case *algebra.Join:
				joins++
			case *algebra.Product:
				t.Errorf("Q%d (greedy): cartesian product in plan", q.Num)
			case *algebra.Select:
				if _, overJoin := x.Child.(*algebra.Join); overJoin {
					rels := map[string]bool{}
					aggs := false
					algebra.WalkPred(x.Pred, func(p algebra.Pred) {
						switch c := p.(type) {
						case *algebra.CmpAV:
							rels[c.A.Rel] = true
							if c.Agg != "" {
								aggs = true
							}
						case *algebra.CmpAA:
							rels[c.L.Rel] = true
							rels[c.R.Rel] = true
						}
					})
					if len(rels) == 1 && !aggs {
						t.Errorf("Q%d (greedy): single-relation filter %s left above a join", q.Num, x.Pred)
					}
				}
			}
		})
		if joins != leaves-1 {
			t.Errorf("Q%d (greedy): %d joins for %d leaves", q.Num, joins, leaves)
		}
		width := len(plan.Root.Schema())
		for _, oc := range plan.Output {
			if oc.Index < 0 || oc.Index >= width {
				t.Errorf("Q%d (greedy): output %q index %d out of range %d", q.Num, oc.Name, oc.Index, width)
			}
		}
	}

	// Ordering divergence pin: Q3 joins customer ⋈ orders ⋈ lineitem and
	// only customer carries an equality pattern, so greedy starts there;
	// cost mode keeps the FROM order, which also begins at customer — use
	// Q5 instead, whose FROM starts at customer but whose region filter
	// (r_name = '...') makes region the greedy anchor.
	for _, q := range Queries() {
		if q.Num != 5 {
			continue
		}
		stmt, _ := sql.Parse(q.SQL)
		plan, err := pl.PlanWith(stmt, planner.PlanOptions{Mode: planner.ModeGreedy})
		if err != nil {
			t.Fatalf("Q5 (greedy): %v", err)
		}
		n := plan.Root
		for {
			cs := n.Children()
			if len(cs) == 0 {
				break
			}
			n = cs[0]
		}
		if b, ok := n.(*algebra.Base); !ok || b.Name == "customer" {
			t.Errorf("Q5 (greedy): join order still anchored at FROM head %v — pattern scoring had no effect", n.Op())
		}
	}
}

// TestTPCHOutputsResolve checks that every output column and every ORDER BY
// of the workload resolves to a column of the plan root.
func TestTPCHOutputsResolve(t *testing.T) {
	cat := Catalog(1)
	pl := planner.New(cat)
	for _, q := range Queries() {
		plan, err := pl.PlanSQL(q.SQL)
		if err != nil {
			t.Fatalf("Q%d: %v", q.Num, err)
		}
		width := len(plan.Root.Schema())
		for _, oc := range plan.Output {
			if oc.Index < 0 || oc.Index >= width {
				t.Errorf("Q%d: output %q index %d out of range %d", q.Num, oc.Name, oc.Index, width)
			}
			if oc.Name == "" {
				t.Errorf("Q%d: unnamed output column", q.Num)
			}
		}
		for _, o := range plan.OrderBy {
			if o.Index < 0 || o.Index >= width {
				t.Errorf("Q%d: order-by index %d out of range %d", q.Num, o.Index, width)
			}
		}
	}
}
