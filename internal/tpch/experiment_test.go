package tpch

import (
	"testing"
)

// TestCostExperimentShape runs the full Figure 9/10 experiment and asserts
// the qualitative results of the paper's evaluation:
//
//   - no query costs more under UAPenc or UAPmix than under UA (the
//     provider-free assignment is always available);
//   - total UAPenc savings are substantial (the paper reports 54.2%; our
//     calibration lands in the 35–60% band, see EXPERIMENTS.md);
//   - UAPmix saves more than UAPenc overall (paper: 71.3%; band 55–80%);
//   - the cumulative series are monotone.
func TestCostExperimentShape(t *testing.T) {
	res, err := RunCostExperiment(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 22 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Norm[UA] != 1 {
			t.Errorf("Q%d: UA normalization = %v", row.Query, row.Norm[UA])
		}
		if row.Norm[UAPenc] > 1.0001 {
			t.Errorf("Q%d: UAPenc (%.3f) exceeds UA", row.Query, row.Norm[UAPenc])
		}
		if row.Norm[UAPmix] > 1.0001 {
			t.Errorf("Q%d: UAPmix (%.3f) exceeds UA", row.Query, row.Norm[UAPmix])
		}
		if row.Cost[UA] <= 0 {
			t.Errorf("Q%d: non-positive absolute cost", row.Query)
		}
	}

	encSave := res.Savings(UAPenc)
	mixSave := res.Savings(UAPmix)
	if encSave < 0.35 || encSave > 0.60 {
		t.Errorf("UAPenc savings = %.1f%%, want 35–60%% (paper 54.2%%)", 100*encSave)
	}
	if mixSave < 0.55 || mixSave > 0.80 {
		t.Errorf("UAPmix savings = %.1f%%, want 55–80%% (paper 71.3%%)", 100*mixSave)
	}
	if mixSave <= encSave {
		t.Errorf("UAPmix (%.1f%%) should save more than UAPenc (%.1f%%)", 100*mixSave, 100*encSave)
	}

	// Cumulative series are monotone non-decreasing, and the deep-saving
	// cross-authority queries show at least 4× savings under UAPenc.
	cum := res.Cumulative()
	for _, sc := range Scenarios() {
		series := cum[sc]
		for i := 1; i < len(series); i++ {
			if series[i] < series[i-1] {
				t.Errorf("%s cumulative decreases at %d", sc, i)
			}
		}
	}
	deep := 0
	for _, row := range res.Rows {
		if row.Norm[UAPenc] < 0.25 {
			deep++
		}
	}
	if deep < 3 {
		t.Errorf("expected at least 3 deeply-saving queries, got %d", deep)
	}

	// Formatting includes every query and the savings line.
	f9, f10 := res.FormatFigure9(), res.FormatFigure10()
	if len(f9) < 500 || len(f10) < 500 {
		t.Errorf("figure rendering too short")
	}
}

// TestLIKEBoundQueriesExplained documents the known deviation: LIKE
// predicates require plaintext, leave a plaintext trace, and pin those
// queries to 1.0 under UAPenc while UAPmix (plaintext visibility over the
// filtered attributes) still saves.
func TestLIKEBoundQueriesExplained(t *testing.T) {
	res, err := RunCostExperiment(1)
	if err != nil {
		t.Fatal(err)
	}
	likeBound := map[int]bool{2: true, 9: true, 13: true, 16: true}
	for _, row := range res.Rows {
		if likeBound[row.Query] {
			if row.Norm[UAPenc] < 0.999 {
				t.Errorf("Q%d unexpectedly saved under UAPenc (%.3f): the LIKE analysis in EXPERIMENTS.md is stale",
					row.Query, row.Norm[UAPenc])
			}
			if row.Norm[UAPmix] > 0.95 {
				t.Errorf("Q%d should save under UAPmix (%.3f)", row.Query, row.Norm[UAPmix])
			}
		}
	}
}

// TestScenarioCostsAreDeterministic guards against nondeterminism in the
// optimizer (map iteration, etc.): two runs must agree.
func TestScenarioCostsAreDeterministic(t *testing.T) {
	a, err := RunCostExperiment(0.1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCostExperiment(0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		for _, sc := range Scenarios() {
			if a.Rows[i].Cost[sc] != b.Rows[i].Cost[sc] {
				t.Errorf("Q%d %s: %v vs %v", a.Rows[i].Query, sc, a.Rows[i].Cost[sc], b.Rows[i].Cost[sc])
			}
		}
	}
}
