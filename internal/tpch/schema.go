// Package tpch provides the workload of the paper's evaluation (Section 7):
// the 8-table TPC-H schema with its tables distributed between two data
// authorities, a deterministic synthetic data generator with TPC-H value
// domains and relative cardinalities, the 22 benchmark queries restated in
// the select-from-where-group by-having fragment the paper's model covers,
// and the three authorization scenarios UA / UAPenc / UAPmix.
//
// Substitutions relative to the official benchmark (see DESIGN.md): dates
// are day offsets from 1992-01-01; select-list arithmetic (e.g.
// l_extendedprice*(1-l_discount)) is precomputed into generated columns
// (l_revenue, l_discrev, ps_value) because the paper's query fragment has
// no expressions; queries with subqueries are restated as joins/group-bys
// preserving their table access patterns and operator mix.
package tpch

import (
	"mpq/internal/algebra"
)

// The two data authorities of the experiment. AuthorityCO holds the
// customer-order side; AuthorityPS the part-supplier side.
const (
	AuthorityCO = "A1"
	AuthorityPS = "A2"
)

// MaxDate is the largest date offset (1998-12-31 relative to 1992-01-01).
const MaxDate = 2555

// Catalog builds the TPC-H catalog at the given scale factor. Cardinalities
// follow the official ratios (SF 1 = 6M lineitem rows); column widths and
// distinct counts drive the selectivity and cost estimates.
func Catalog(sf float64) *algebra.Catalog {
	cat := algebra.NewCatalog()
	add := func(name, authority string, rows float64, cols []algebra.Column) {
		cat.Add(&algebra.Relation{Name: name, Authority: authority, Rows: rows, Columns: cols})
	}

	add("region", AuthorityCO, 5, []algebra.Column{
		{Name: "r_regionkey", Type: algebra.TInt, Width: 4, Distinct: 5},
		{Name: "r_name", Type: algebra.TString, Width: 12, Distinct: 5},
		{Name: "r_comment", Type: algebra.TString, Width: 60, Distinct: 5},
	})
	add("nation", AuthorityPS, 25, []algebra.Column{
		{Name: "n_nationkey", Type: algebra.TInt, Width: 4, Distinct: 25},
		{Name: "n_name", Type: algebra.TString, Width: 16, Distinct: 25},
		{Name: "n_regionkey", Type: algebra.TInt, Width: 4, Distinct: 5},
		{Name: "n_comment", Type: algebra.TString, Width: 80, Distinct: 25},
	})
	add("supplier", AuthorityPS, 10000*sf, []algebra.Column{
		{Name: "s_suppkey", Type: algebra.TInt, Width: 4, Distinct: 10000 * sf},
		{Name: "s_name", Type: algebra.TString, Width: 18, Distinct: 10000 * sf},
		{Name: "s_address", Type: algebra.TString, Width: 25, Distinct: 10000 * sf},
		{Name: "s_nationkey", Type: algebra.TInt, Width: 4, Distinct: 25},
		{Name: "s_phone", Type: algebra.TString, Width: 15, Distinct: 10000 * sf},
		{Name: "s_acctbal", Type: algebra.TFloat, Width: 8, Distinct: 9000},
		{Name: "s_comment", Type: algebra.TString, Width: 60, Distinct: 10000 * sf},
	})
	add("customer", AuthorityCO, 150000*sf, []algebra.Column{
		{Name: "c_custkey", Type: algebra.TInt, Width: 4, Distinct: 150000 * sf},
		{Name: "c_name", Type: algebra.TString, Width: 18, Distinct: 150000 * sf},
		{Name: "c_address", Type: algebra.TString, Width: 25, Distinct: 150000 * sf},
		{Name: "c_nationkey", Type: algebra.TInt, Width: 4, Distinct: 25},
		{Name: "c_phone", Type: algebra.TString, Width: 15, Distinct: 150000 * sf},
		{Name: "c_acctbal", Type: algebra.TFloat, Width: 8, Distinct: 100000},
		{Name: "c_mktsegment", Type: algebra.TString, Width: 10, Distinct: 5},
		{Name: "c_comment", Type: algebra.TString, Width: 70, Distinct: 150000 * sf},
	})
	add("part", AuthorityPS, 200000*sf, []algebra.Column{
		{Name: "p_partkey", Type: algebra.TInt, Width: 4, Distinct: 200000 * sf},
		{Name: "p_name", Type: algebra.TString, Width: 35, Distinct: 200000 * sf},
		{Name: "p_mfgr", Type: algebra.TString, Width: 14, Distinct: 5},
		{Name: "p_brand", Type: algebra.TString, Width: 10, Distinct: 25},
		{Name: "p_type", Type: algebra.TString, Width: 25, Distinct: 150},
		{Name: "p_size", Type: algebra.TInt, Width: 4, Distinct: 50},
		{Name: "p_container", Type: algebra.TString, Width: 10, Distinct: 40},
		{Name: "p_retailprice", Type: algebra.TFloat, Width: 8, Distinct: 20000},
		{Name: "p_comment", Type: algebra.TString, Width: 15, Distinct: 200000 * sf},
	})
	add("partsupp", AuthorityPS, 800000*sf, []algebra.Column{
		{Name: "ps_partkey", Type: algebra.TInt, Width: 4, Distinct: 200000 * sf},
		{Name: "ps_suppkey", Type: algebra.TInt, Width: 4, Distinct: 10000 * sf},
		{Name: "ps_availqty", Type: algebra.TInt, Width: 4, Distinct: 10000},
		{Name: "ps_supplycost", Type: algebra.TFloat, Width: 8, Distinct: 100000},
		{Name: "ps_value", Type: algebra.TFloat, Width: 8, Distinct: 500000},
		{Name: "ps_comment", Type: algebra.TString, Width: 80, Distinct: 800000 * sf},
	})
	add("orders", AuthorityCO, 1500000*sf, []algebra.Column{
		{Name: "o_orderkey", Type: algebra.TInt, Width: 4, Distinct: 1500000 * sf},
		{Name: "o_custkey", Type: algebra.TInt, Width: 4, Distinct: 99996 * sf},
		{Name: "o_orderstatus", Type: algebra.TString, Width: 1, Distinct: 3},
		{Name: "o_totalprice", Type: algebra.TFloat, Width: 8, Distinct: 1000000},
		{Name: "o_orderdate", Type: algebra.TDate, Width: 4, Distinct: 2406},
		{Name: "o_orderpriority", Type: algebra.TString, Width: 15, Distinct: 5},
		{Name: "o_clerk", Type: algebra.TString, Width: 15, Distinct: 1000 * sf},
		{Name: "o_shippriority", Type: algebra.TInt, Width: 4, Distinct: 1},
		{Name: "o_comment", Type: algebra.TString, Width: 50, Distinct: 1500000 * sf},
	})
	add("lineitem", AuthorityCO, 6000000*sf, []algebra.Column{
		{Name: "l_orderkey", Type: algebra.TInt, Width: 4, Distinct: 1500000 * sf},
		{Name: "l_partkey", Type: algebra.TInt, Width: 4, Distinct: 200000 * sf},
		{Name: "l_suppkey", Type: algebra.TInt, Width: 4, Distinct: 10000 * sf},
		{Name: "l_linenumber", Type: algebra.TInt, Width: 4, Distinct: 7},
		{Name: "l_quantity", Type: algebra.TInt, Width: 4, Distinct: 50},
		{Name: "l_extendedprice", Type: algebra.TFloat, Width: 8, Distinct: 1000000},
		{Name: "l_discount", Type: algebra.TFloat, Width: 8, Distinct: 11},
		{Name: "l_tax", Type: algebra.TFloat, Width: 8, Distinct: 9},
		{Name: "l_revenue", Type: algebra.TFloat, Width: 8, Distinct: 1000000},
		{Name: "l_discrev", Type: algebra.TFloat, Width: 8, Distinct: 1000000},
		{Name: "l_returnflag", Type: algebra.TString, Width: 1, Distinct: 3},
		{Name: "l_linestatus", Type: algebra.TString, Width: 1, Distinct: 2},
		{Name: "l_shipdate", Type: algebra.TDate, Width: 4, Distinct: 2526},
		{Name: "l_commitdate", Type: algebra.TDate, Width: 4, Distinct: 2466},
		{Name: "l_receiptdate", Type: algebra.TDate, Width: 4, Distinct: 2554},
		{Name: "l_shipinstruct", Type: algebra.TString, Width: 25, Distinct: 4},
		{Name: "l_shipmode", Type: algebra.TString, Width: 10, Distinct: 7},
		{Name: "l_comment", Type: algebra.TString, Width: 27, Distinct: 6000000 * sf},
	})
	return cat
}

// TableNames lists the TPC-H relations in dependency order.
func TableNames() []string {
	return []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"}
}

// Value domains shared by the generator and the queries.
var (
	regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
		"GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
		"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
		"VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
	}
	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipmodes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	instructs  = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	containers = []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG", "MED BAG", "MED BOX",
		"MED PKG", "MED PACK", "LG CASE", "LG BOX", "LG PACK", "LG PKG"}
	typeSyllables1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyllables2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyllables3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	nameWords      = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque",
		"black", "blanched", "blue", "blush", "brown", "burlywood", "burnished",
		"chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cream", "cyan",
		"dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
		"frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
		"hot", "hotpink", "indian", "ivory", "khaki", "lace", "lavender", "lawn",
		"lemon", "light", "lime", "linen", "magenta", "maroon", "medium"}
	commentWords = []string{"carefully", "quickly", "furiously", "slyly", "blithely",
		"express", "regular", "special", "requests", "deposits", "accounts", "packages",
		"instructions", "theodolites", "pinto", "beans", "foxes", "ideas", "dependencies",
		"excuses", "platelets", "asymptotes", "courts", "dolphins", "multipliers"}
)
