package tpch

import (
	"fmt"
	"strings"

	"mpq/internal/algebra"
	"mpq/internal/assignment"
	"mpq/internal/authz"
	"mpq/internal/core"
	"mpq/internal/cost"
	"mpq/internal/planner"
)

// Scenario names one of the three authorization configurations of the
// paper's evaluation (Section 7).
type Scenario string

// The experiment scenarios.
const (
	// UA: base relations are accessible only to the user issuing the query
	// (and to their own authorities); providers get nothing.
	UA Scenario = "UA"
	// UAPenc: providers are additionally authorized to access every
	// attribute of every relation in encrypted form.
	UAPenc Scenario = "UAPenc"
	// UAPmix: as UAPenc, but half of the attributes are accessible to the
	// providers in plaintext.
	UAPmix Scenario = "UAPmix"
)

// Scenarios lists the three configurations in presentation order.
func Scenarios() []Scenario { return []Scenario{UA, UAPenc, UAPmix} }

// Experiment subjects: the user, the two authorities, and three providers.
const User = authz.Subject("U")

// Providers returns the cloud providers of the experiment.
func Providers() []authz.Subject { return []authz.Subject{"X", "Y", "Z"} }

// Subjects returns every subject of the experiment.
func Subjects() []authz.Subject {
	return append([]authz.Subject{User, AuthorityCO, AuthorityPS}, Providers()...)
}

// Policy builds the authorizations of a scenario over the catalog: each
// authority holds full plaintext on its own relations, the user holds full
// plaintext on everything (it must access query results), and providers get
// the scenario-dependent default ('any') authorization.
func Policy(cat *algebra.Catalog, sc Scenario) *authz.Policy {
	pol := authz.NewPolicy()
	for _, name := range cat.Names() {
		rel := cat.Relation(name)
		all := make([]string, len(rel.Columns))
		for i, c := range rel.Columns {
			all[i] = c.Name
		}
		pol.MustGrant(name, authz.Subject(rel.Authority), all, nil)
		pol.MustGrant(name, User, all, nil)
		switch sc {
		case UAPenc:
			pol.MustGrant(name, authz.Any, nil, all)
		case UAPmix:
			// Half of the attributes become plaintext for providers. The
			// plaintext half is chosen consistently across relations — all
			// join-key columns plus every other remaining column — because
			// splitting a join-key pair across visibility classes would
			// trip uniform visibility (Definition 4.1, condition 3) and
			// lock providers out of the joins the scenario means to enable.
			var plain, enc []string
			odd := false
			for _, col := range rel.Columns {
				c := col.Name
				if strings.HasSuffix(c, "key") || col.Type == algebra.TDate {
					plain = append(plain, c)
					continue
				}
				if odd {
					plain = append(plain, c)
				} else {
					enc = append(enc, c)
				}
				odd = !odd
			}
			pol.MustGrant(name, authz.Any, plain, enc)
		}
	}
	return pol
}

// System builds the authorization system of a scenario, with attribute
// type information so the plaintext requirements respect scheme domains.
func System(cat *algebra.Catalog, sc Scenario) *core.System {
	sys := core.NewSystem(Policy(cat, sc), Subjects()...)
	sys.Types = cat.TypesOf()
	return sys
}

// Model builds the Section 7 price/network configuration.
func Model() *cost.Model {
	return cost.NewPaperModel(User, []authz.Subject{AuthorityCO, AuthorityPS}, Providers())
}

// Row is the costed execution of one query under the three scenarios.
type Row struct {
	Query int
	Name  string
	Cost  map[Scenario]float64 // absolute USD
	Norm  map[Scenario]float64 // normalized to UA = 1
}

// Results is the outcome of the cost experiment: per-query rows (Figure 9)
// plus the aggregate savings (Figure 10).
type Results struct {
	SF   float64
	Rows []Row
}

// Cumulative returns the running total of normalized costs per scenario in
// query order (the Figure 10 series).
func (r *Results) Cumulative() map[Scenario][]float64 {
	out := make(map[Scenario][]float64)
	for _, sc := range Scenarios() {
		acc := 0.0
		series := make([]float64, len(r.Rows))
		for i, row := range r.Rows {
			acc += row.Norm[sc]
			series[i] = acc
		}
		out[sc] = series
	}
	return out
}

// Savings returns the total saving of a scenario relative to UA, as a
// fraction in [0,1] (the paper reports 54.2% for UAPenc and 71.3% for
// UAPmix).
func (r *Results) Savings(sc Scenario) float64 {
	var ua, s float64
	for _, row := range r.Rows {
		ua += row.Norm[UA]
		s += row.Norm[sc]
	}
	if ua == 0 {
		return 0
	}
	return 1 - s/ua
}

// RunCostExperiment plans the 22 queries against the catalog at the given
// scale factor and optimizes the operation assignment under each scenario,
// reproducing the per-query (Figure 9) and cumulative (Figure 10) economic
// cost comparison.
func RunCostExperiment(sf float64) (*Results, error) {
	cat := Catalog(sf)
	pl := planner.New(cat)
	m := Model()
	systems := make(map[Scenario]*core.System, 3)
	for _, sc := range Scenarios() {
		systems[sc] = System(cat, sc)
	}

	res := &Results{SF: sf}
	for _, q := range Queries() {
		plan, err := pl.PlanSQL(q.SQL)
		if err != nil {
			return nil, fmt.Errorf("tpch: planning Q%d: %w", q.Num, err)
		}
		row := Row{Query: q.Num, Name: q.Name,
			Cost: make(map[Scenario]float64), Norm: make(map[Scenario]float64)}
		for _, sc := range Scenarios() {
			sys := systems[sc]
			an := sys.Analyze(plan.Root, nil)
			opt, err := assignment.Optimize(sys, an, m, assignment.Options{})
			if err != nil {
				return nil, fmt.Errorf("tpch: optimizing Q%d under %s: %w", q.Num, sc, err)
			}
			row.Cost[sc] = opt.Cost.Total()
		}
		for _, sc := range Scenarios() {
			row.Norm[sc] = row.Cost[sc] / row.Cost[UA]
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// FormatFigure9 renders the per-query normalized costs as the paper's
// Figure 9 table.
func (r *Results) FormatFigure9() string {
	out := fmt.Sprintf("%-5s %-36s %8s %8s %8s\n", "query", "name", "UA", "UAPenc", "UAPmix")
	for _, row := range r.Rows {
		out += fmt.Sprintf("Q%-4d %-36s %8.3f %8.3f %8.3f\n",
			row.Query, row.Name, row.Norm[UA], row.Norm[UAPenc], row.Norm[UAPmix])
	}
	return out
}

// FormatFigure10 renders the cumulative normalized costs (Figure 10) and
// the total savings.
func (r *Results) FormatFigure10() string {
	cum := r.Cumulative()
	out := fmt.Sprintf("%-5s %10s %10s %10s\n", "query", "UA", "UAPenc", "UAPmix")
	for i, row := range r.Rows {
		out += fmt.Sprintf("Q%-4d %10.3f %10.3f %10.3f\n",
			row.Query, cum[UA][i], cum[UAPenc][i], cum[UAPmix][i])
	}
	out += fmt.Sprintf("\nsavings vs UA: UAPenc %.1f%%  UAPmix %.1f%%  (paper: 54.2%% / 71.3%%)\n",
		100*r.Savings(UAPenc), 100*r.Savings(UAPmix))
	return out
}
