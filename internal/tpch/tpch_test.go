package tpch

import (
	"testing"

	"mpq/internal/algebra"
	"mpq/internal/exec"
	"mpq/internal/planner"
)

func TestCatalogComplete(t *testing.T) {
	cat := Catalog(1)
	if got := len(cat.Names()); got != 8 {
		t.Fatalf("relations = %d, want 8", got)
	}
	li := cat.Relation("lineitem")
	if li == nil || li.Rows != 6000000 {
		t.Errorf("lineitem rows = %v", li)
	}
	if li.Authority != AuthorityCO {
		t.Errorf("lineitem authority = %s", li.Authority)
	}
	if cat.Relation("partsupp").Authority != AuthorityPS {
		t.Errorf("partsupp authority wrong")
	}
	// Authorities split the tables: both sides non-empty.
	co, ps := 0, 0
	for _, n := range cat.Names() {
		switch cat.Relation(n).Authority {
		case AuthorityCO:
			co++
		case AuthorityPS:
			ps++
		}
	}
	if co == 0 || ps == 0 || co+ps != 8 {
		t.Errorf("authority split = %d/%d", co, ps)
	}
}

func TestGeneratorDeterministicAndScaled(t *testing.T) {
	a := Generate(0.001, 42)
	b := Generate(0.001, 42)
	for name, ta := range a {
		tb := b[name]
		if ta.Len() != tb.Len() {
			t.Errorf("%s: nondeterministic row count %d vs %d", name, ta.Len(), tb.Len())
		}
	}
	if got := a["region"].Len(); got != 5 {
		t.Errorf("region rows = %d", got)
	}
	if got := a["nation"].Len(); got != 25 {
		t.Errorf("nation rows = %d", got)
	}
	if got := a["supplier"].Len(); got != 10 {
		t.Errorf("supplier rows = %d, want 10", got)
	}
	if got := a["customer"].Len(); got != 150 {
		t.Errorf("customer rows = %d, want 150", got)
	}
	// lineitem ≈ 4× orders.
	or, li := a["orders"].Len(), a["lineitem"].Len()
	if or != 1500 {
		t.Errorf("orders rows = %d", or)
	}
	if li < 2*or || li > 7*or {
		t.Errorf("lineitem/orders ratio = %d/%d", li, or)
	}
	// Different seed changes the data.
	c := Generate(0.001, 43)
	if c["lineitem"].Len() == li {
		rowA := a["lineitem"].Rows[0]
		rowC := c["lineitem"].Rows[0]
		same := true
		for i := range rowA {
			if rowA[i].String() != rowC[i].String() {
				same = false
			}
		}
		if same {
			t.Errorf("seed does not change the data")
		}
	}
}

func TestGeneratedDataMatchesCatalogSchema(t *testing.T) {
	cat := Catalog(0.001)
	tables := Generate(0.001, 1)
	for _, name := range TableNames() {
		rel := cat.Relation(name)
		tbl := tables[name]
		if tbl == nil {
			t.Fatalf("missing table %s", name)
		}
		if len(tbl.Schema) != len(rel.Columns) {
			t.Fatalf("%s: schema width %d vs catalog %d", name, len(tbl.Schema), len(rel.Columns))
		}
		for i, col := range rel.Columns {
			if tbl.Schema[i].Name != col.Name || tbl.Schema[i].Rel != name {
				t.Errorf("%s column %d = %v, want %s", name, i, tbl.Schema[i], col.Name)
			}
		}
		// Value kinds match column types on the first row.
		if tbl.Len() > 0 {
			for i, col := range rel.Columns {
				v := tbl.Rows[0][i]
				switch col.Type {
				case algebra.TInt, algebra.TDate:
					if v.Kind != exec.KInt {
						t.Errorf("%s.%s kind = %d, want int", name, col.Name, v.Kind)
					}
				case algebra.TFloat:
					if v.Kind != exec.KFloat {
						t.Errorf("%s.%s kind = %d, want float", name, col.Name, v.Kind)
					}
				case algebra.TString:
					if v.Kind != exec.KString {
						t.Errorf("%s.%s kind = %d, want string", name, col.Name, v.Kind)
					}
				}
			}
		}
	}
}

func TestDerivedColumns(t *testing.T) {
	tables := Generate(0.001, 7)
	li := tables["lineitem"]
	price := li.ColIndex(algebra.A("lineitem", "l_extendedprice"))
	disc := li.ColIndex(algebra.A("lineitem", "l_discount"))
	rev := li.ColIndex(algebra.A("lineitem", "l_revenue"))
	for _, row := range li.Rows[:50] {
		want := row[price].F * (1 - row[disc].F)
		got := row[rev].F
		if got < want-0.011 || got > want+0.011 {
			t.Fatalf("l_revenue = %v, want ≈ %v", got, want)
		}
	}
}

// TestAllQueriesPlanAndAnalyze plans every workload query against the SF-1
// catalog and checks that each is feasible under every scenario.
func TestAllQueriesPlanAndAnalyze(t *testing.T) {
	cat := Catalog(1)
	pl := planner.New(cat)
	for _, sc := range Scenarios() {
		sys := System(cat, sc)
		for _, q := range Queries() {
			plan, err := pl.PlanSQL(q.SQL)
			if err != nil {
				t.Fatalf("Q%d: %v", q.Num, err)
			}
			an := sys.Analyze(plan.Root, nil)
			if err := an.Feasible(); err != nil {
				t.Errorf("Q%d under %s: %v", q.Num, sc, err)
			}
		}
	}
}

// TestAllQueriesExecute runs the whole workload on generated data at a tiny
// scale factor (plaintext execution).
func TestAllQueriesExecute(t *testing.T) {
	cat := Catalog(0.002)
	pl := planner.New(cat)
	e := exec.NewExecutor()
	for name, tbl := range Generate(0.002, 11) {
		e.Tables[name] = tbl
	}
	for _, q := range Queries() {
		plan, err := pl.PlanSQL(q.SQL)
		if err != nil {
			t.Fatalf("Q%d plan: %v", q.Num, err)
		}
		if _, _, err := e.RunPlan(plan); err != nil {
			t.Errorf("Q%d execute: %v", q.Num, err)
		}
	}
}

func TestQueryCount(t *testing.T) {
	qs := Queries()
	if len(qs) != 22 {
		t.Fatalf("queries = %d, want 22", len(qs))
	}
	seen := map[int]bool{}
	for _, q := range qs {
		if seen[q.Num] {
			t.Errorf("duplicate query number %d", q.Num)
		}
		seen[q.Num] = true
	}
	for i := 1; i <= 22; i++ {
		if !seen[i] {
			t.Errorf("missing query %d", i)
		}
	}
}

func TestPolicyScenarios(t *testing.T) {
	cat := Catalog(1)
	la := algebra.A("lineitem", "l_quantity")

	ua := Policy(cat, UA)
	if !ua.View("X").P.Empty() || !ua.View("X").E.Empty() {
		t.Errorf("UA providers should see nothing")
	}
	if !ua.View(User).P.Has(la) {
		t.Errorf("user should see everything in plaintext")
	}
	if !ua.View(AuthorityCO).P.Has(la) {
		t.Errorf("authority should see its own data")
	}
	if ua.View(AuthorityPS).P.Has(la) {
		t.Errorf("authority should not see the other side's data")
	}

	enc := Policy(cat, UAPenc)
	vx := enc.View("X")
	if !vx.P.Empty() {
		t.Errorf("UAPenc providers should have no plaintext: %v", vx.P)
	}
	if !vx.E.Has(la) {
		t.Errorf("UAPenc providers should see lineitem encrypted")
	}

	mix := Policy(cat, UAPmix)
	vm := mix.View("Y")
	if vm.P.Empty() || vm.E.Empty() {
		t.Errorf("UAPmix providers should have both plaintext and encrypted attributes")
	}
	if len(vm.P)+len(vm.E) != len(vx.E) {
		t.Errorf("UAPmix split sizes: %d + %d != %d", len(vm.P), len(vm.E), len(vx.E))
	}
}
