package tpch

// Query is one workload entry: a TPC-H query number and its SQL restated in
// the select-from-where-group by-having fragment of the paper's model.
// Restatements preserve each query's table access pattern, join graph, and
// operator mix; constructs outside the fragment (subqueries, CASE
// arithmetic, outer joins, DISTINCT counts) are simplified as documented in
// EXPERIMENTS.md. Dates are day offsets from 1992-01-01.
type Query struct {
	Num  int
	Name string
	SQL  string
}

// Queries returns the 22-query workload.
func Queries() []Query {
	return []Query{
		{1, "pricing summary report", `
			select l_returnflag, l_linestatus,
			       sum(l_quantity), sum(l_extendedprice), sum(l_revenue),
			       avg(l_quantity), avg(l_extendedprice), avg(l_discount), count(*)
			from lineitem
			where l_shipdate <= 2465
			group by l_returnflag, l_linestatus
			order by l_returnflag, l_linestatus`},
		{2, "minimum cost supplier", `
			select s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone
			from part
			join partsupp on p_partkey = ps_partkey
			join supplier on s_suppkey = ps_suppkey
			join nation on s_nationkey = n_nationkey
			join region on n_regionkey = r_regionkey
			where p_size = 15 and p_type like '%BRASS' and r_name = 'EUROPE'
			order by s_acctbal desc, n_name, s_name, p_partkey
			limit 100`},
		{3, "shipping priority", `
			select l_orderkey, sum(l_revenue) as revenue, o_orderdate, o_shippriority
			from customer
			join orders on c_custkey = o_custkey
			join lineitem on l_orderkey = o_orderkey
			where c_mktsegment = 'BUILDING' and o_orderdate < 1170 and l_shipdate > 1170
			group by l_orderkey, o_orderdate, o_shippriority
			order by revenue desc, o_orderdate
			limit 10`},
		{4, "order priority checking", `
			select o_orderpriority, count(*) as order_count
			from orders
			join lineitem on l_orderkey = o_orderkey
			where o_orderdate >= 1095 and o_orderdate < 1185
			  and l_commitdate < l_receiptdate
			group by o_orderpriority
			order by o_orderpriority`},
		{5, "local supplier volume", `
			select n_name, sum(l_revenue) as revenue
			from customer
			join orders on c_custkey = o_custkey
			join lineitem on l_orderkey = o_orderkey
			join supplier on l_suppkey = s_suppkey
			join nation on s_nationkey = n_nationkey
			join region on n_regionkey = r_regionkey
			where c_nationkey = s_nationkey and r_name = 'ASIA'
			  and o_orderdate >= 730 and o_orderdate < 1095
			group by n_name
			order by revenue desc`},
		{6, "forecasting revenue change", `
			select sum(l_discrev)
			from lineitem
			where l_shipdate >= 730 and l_shipdate < 1095
			  and l_discount between 0.05 and 0.07 and l_quantity < 24`},
		{7, "volume shipping", `
			select n_name, sum(l_revenue) as revenue
			from supplier
			join lineitem on s_suppkey = l_suppkey
			join orders on o_orderkey = l_orderkey
			join customer on c_custkey = o_custkey
			join nation on s_nationkey = n_nationkey
			where l_shipdate >= 1095 and l_shipdate <= 1825
			group by n_name
			order by n_name`},
		{8, "national market share", `
			select n_name, sum(l_revenue) as revenue
			from part
			join lineitem on p_partkey = l_partkey
			join supplier on s_suppkey = l_suppkey
			join orders on o_orderkey = l_orderkey
			join customer on c_custkey = o_custkey
			join nation on c_nationkey = n_nationkey
			join region on n_regionkey = r_regionkey
			where r_name = 'AMERICA' and p_type = 'ECONOMY ANODIZED STEEL'
			  and o_orderdate >= 1461 and o_orderdate <= 2190
			group by n_name
			order by n_name`},
		{9, "product type profit measure", `
			select n_name, sum(l_revenue) as profit
			from part
			join lineitem on p_partkey = l_partkey
			join supplier on s_suppkey = l_suppkey
			join partsupp on ps_partkey = l_partkey and ps_suppkey = l_suppkey
			join orders on o_orderkey = l_orderkey
			join nation on s_nationkey = n_nationkey
			where p_name like '%green%'
			group by n_name
			order by n_name`},
		{10, "returned item reporting", `
			select c_custkey, c_name, sum(l_revenue) as revenue, c_acctbal, n_name
			from customer
			join orders on c_custkey = o_custkey
			join lineitem on l_orderkey = o_orderkey
			join nation on c_nationkey = n_nationkey
			where o_orderdate >= 820 and o_orderdate < 910 and l_returnflag = 'R'
			group by c_custkey, c_name, c_acctbal, n_name
			order by revenue desc
			limit 20`},
		{11, "important stock identification", `
			select ps_partkey, sum(ps_value) as value
			from partsupp
			join supplier on ps_suppkey = s_suppkey
			join nation on s_nationkey = n_nationkey
			where n_name = 'GERMANY'
			group by ps_partkey
			having sum(ps_value) > 100000
			order by value desc
			limit 200`},
		{12, "shipping modes and order priority", `
			select l_shipmode, count(*) as line_count
			from orders
			join lineitem on o_orderkey = l_orderkey
			where l_shipmode in ('MAIL', 'SHIP')
			  and l_commitdate < l_receiptdate and l_shipdate < l_commitdate
			  and l_receiptdate >= 730 and l_receiptdate < 1095
			group by l_shipmode
			order by l_shipmode`},
		{13, "customer distribution", `
			select o_custkey, count(*) as c_count
			from orders
			where not o_comment like '%special%requests%'
			group by o_custkey
			order by c_count desc, o_custkey
			limit 100`},
		{14, "promotion effect", `
			select p_type, sum(l_revenue) as revenue
			from lineitem
			join part on l_partkey = p_partkey
			where l_shipdate >= 850 and l_shipdate < 880
			group by p_type
			order by revenue desc`},
		{15, "top supplier", `
			select s_suppkey, s_name, s_address, s_phone, sum(l_revenue) as total_revenue
			from supplier
			join lineitem on s_suppkey = l_suppkey
			where l_shipdate >= 1000 and l_shipdate < 1090
			group by s_suppkey, s_name, s_address, s_phone
			order by total_revenue desc
			limit 10`},
		{16, "parts/supplier relationship", `
			select p_brand, p_type, p_size, count(*) as supplier_cnt
			from partsupp
			join part on p_partkey = ps_partkey
			where not p_brand = 'Brand#45' and not p_type like 'MEDIUM POLISHED%'
			  and p_size in (49, 14, 23, 45, 19, 3, 36, 9)
			group by p_brand, p_type, p_size
			order by supplier_cnt desc, p_brand, p_type, p_size
			limit 100`},
		{17, "small-quantity-order revenue", `
			select sum(l_extendedprice) as total
			from lineitem
			join part on p_partkey = l_partkey
			where p_brand = 'Brand#23' and p_container = 'MED BOX' and l_quantity < 5`},
		{18, "large volume customer", `
			select c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, sum(l_quantity) as qty
			from customer
			join orders on c_custkey = o_custkey
			join lineitem on o_orderkey = l_orderkey
			group by c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
			having sum(l_quantity) > 300
			order by o_totalprice desc, o_orderdate
			limit 100`},
		{19, "discounted revenue", `
			select sum(l_revenue) as revenue
			from lineitem
			join part on p_partkey = l_partkey
			where (p_brand = 'Brand#12' and l_quantity <= 11)
			   or (p_brand = 'Brand#23' and l_quantity <= 20)
			   or (p_brand = 'Brand#34' and l_quantity <= 30)`},
		{20, "potential part promotion", `
			select s_name, s_address
			from supplier
			join nation on s_nationkey = n_nationkey
			join partsupp on ps_suppkey = s_suppkey
			where n_name = 'CANADA' and ps_availqty > 5000
			order by s_name
			limit 100`},
		{21, "suppliers who kept orders waiting", `
			select s_name, count(*) as numwait
			from supplier
			join lineitem on s_suppkey = l_suppkey
			join orders on o_orderkey = l_orderkey
			join nation on s_nationkey = n_nationkey
			where o_orderstatus = 'F' and l_receiptdate > l_commitdate
			  and n_name = 'SAUDI ARABIA'
			group by s_name
			order by numwait desc, s_name
			limit 100`},
		{22, "global sales opportunity", `
			select c_nationkey, count(*) as numcust, sum(c_acctbal) as totacctbal
			from customer
			where c_acctbal > 7000
			group by c_nationkey
			order by c_nationkey`},
	}
}
